#include "src/chain/ledger.h"

#include "src/common/logging.h"

namespace ac3::chain {

Amount LedgerState::LiquidValue() const {
  Amount total = 0;
  for (const auto& [outpoint, output] : utxos) total += output.value;
  return total;
}

Amount LedgerState::LockedValue() const {
  Amount total = 0;
  for (const auto& [id, contract] : contracts) total += contract->locked_value();
  return total;
}

Amount LedgerState::BalanceOf(const crypto::PublicKey& owner) const {
  Amount total = 0;
  for (const auto& [outpoint, output] : utxos) {
    if (output.owner == owner) total += output.value;
  }
  return total;
}

Result<contracts::ContractPtr> LedgerState::GetContract(
    const crypto::Hash256& id) const {
  const contracts::ContractPtr* contract = contracts.Find(id);
  if (contract == nullptr) {
    return Status::NotFound("no contract " + id.ShortHex());
  }
  return *contract;
}

namespace {

/// Checks input ownership and computes the total input value.
Result<Amount> ConsumeInputs(LedgerState* state, const Transaction& tx) {
  if (tx.inputs.empty()) {
    return Status::InvalidArgument("non-coinbase transaction needs inputs");
  }
  Amount total = 0;
  // Validate first (no partial mutation on failure).
  for (size_t i = 0; i < tx.inputs.size(); ++i) {
    const OutPoint& in = tx.inputs[i];
    // A repeated outpoint would be summed twice but erased once — minting
    // value. Input lists are tiny, so the quadratic scan is free.
    for (size_t j = 0; j < i; ++j) {
      if (tx.inputs[j] == in) {
        return Status::InvalidArgument("duplicate input outpoint");
      }
    }
    const TxOutput* output = state->utxos.Find(in);
    if (output == nullptr) {
      return Status::InvalidArgument("input not in UTXO set (double spend?)");
    }
    if (output->owner != tx.signer) {
      return Status::VerificationFailed(
          "input not owned by transaction signer");
    }
    total += output->value;
  }
  for (const OutPoint& in : tx.inputs) state->utxos.Erase(in);
  return total;
}

void CreateOutputs(LedgerState* state, const crypto::Hash256& tx_id,
                   const std::vector<TxOutput>& outputs,
                   uint32_t first_index = 0) {
  for (uint32_t i = 0; i < outputs.size(); ++i) {
    state->utxos.Put(OutPoint{tx_id, first_index + i}, outputs[i]);
  }
}

/// True when a contract-call failure should be recorded as a reverted
/// receipt (included in the block) rather than invalidating the block.
bool IsRevert(const Status& status) {
  return status.code() == StatusCode::kFailedPrecondition ||
         status.code() == StatusCode::kVerificationFailed ||
         status.code() == StatusCode::kInvalidArgument;
}

}  // namespace

Result<Receipt> ApplyTransaction(LedgerState* state, const Transaction& tx,
                                 const BlockEnv& env) {
  if (tx.chain_id != env.chain_id) {
    return Status::InvalidArgument("transaction targets another chain");
  }
  if (!tx.VerifySignature()) {
    return Status::VerificationFailed("bad transaction signature");
  }

  const crypto::Hash256 tx_id = tx.Id();
  Receipt receipt;
  receipt.tx_id = tx_id;

  switch (tx.type) {
    case TxType::kCoinbase:
      return Status::InvalidArgument("coinbase outside block head position");

    case TxType::kTransfer: {
      AC3_ASSIGN_OR_RETURN(Amount in_total, ConsumeInputs(state, tx));
      if (in_total != tx.TotalOutput() + tx.fee) {
        return Status::InvalidArgument("transfer value not conserved");
      }
      CreateOutputs(state, tx_id, tx.outputs);
      receipt.note = "transfer";
      return receipt;
    }

    case TxType::kDeploy: {
      contracts::RegisterBuiltinContracts();
      AC3_ASSIGN_OR_RETURN(Amount in_total, ConsumeInputs(state, tx));
      if (in_total != tx.TotalOutput() + tx.fee + tx.contract_value) {
        return Status::InvalidArgument("deploy value not conserved");
      }
      contracts::DeployContext ctx;
      ctx.chain_id = env.chain_id;
      ctx.tx_id = tx_id;
      ctx.sender = tx.signer;
      ctx.value = tx.contract_value;
      ctx.block_time = env.time;
      ctx.block_height = env.height;
      auto deployed = contracts::ContractFactory::Instance().Deploy(
          tx.contract_kind, tx.payload, ctx);
      if (!deployed.ok()) {
        // Malformed deployments never make it into a block.
        return deployed.status();
      }
      CreateOutputs(state, tx_id, tx.outputs);
      state->contracts.Put(tx_id, *deployed);
      receipt.contract_id = tx_id;
      receipt.state_digest = (*deployed)->StateDigest();
      receipt.note = "deployed " + tx.contract_kind;
      return receipt;
    }

    case TxType::kCall: {
      contracts::RegisterBuiltinContracts();
      AC3_ASSIGN_OR_RETURN(contracts::ContractPtr contract,
                           state->GetContract(tx.contract_id));
      AC3_ASSIGN_OR_RETURN(Amount in_total, ConsumeInputs(state, tx));
      if (in_total != tx.TotalOutput() + tx.fee) {
        return Status::InvalidArgument("call value not conserved");
      }
      CreateOutputs(state, tx_id, tx.outputs);

      std::vector<contracts::Payout> payouts;
      contracts::CallContext ctx;
      ctx.chain_id = env.chain_id;
      ctx.tx_id = tx_id;
      ctx.sender = tx.signer;
      ctx.block_time = env.time;
      ctx.block_height = env.height;
      ctx.payouts = &payouts;

      receipt.contract_id = tx.contract_id;
      auto outcome = contract->Call(tx.function, tx.payload, ctx);
      if (!outcome.ok()) {
        if (!IsRevert(outcome.status())) return outcome.status();
        // Reverted: fee consumed, contract unchanged.
        receipt.success = false;
        receipt.state_digest = contract->StateDigest();
        receipt.note = outcome.status().ToString();
        return receipt;
      }

      // Conservation across the contract boundary: value paid out plus
      // value still locked must equal the value locked before the call.
      Amount paid = 0;
      for (const contracts::Payout& payout : payouts) paid += payout.value;
      if (paid + outcome->next->locked_value() != contract->locked_value()) {
        return Status::Internal("contract violated value conservation");
      }
      std::vector<TxOutput> payout_outputs;
      payout_outputs.reserve(payouts.size());
      for (const contracts::Payout& payout : payouts) {
        payout_outputs.push_back(TxOutput{payout.value, payout.recipient});
      }
      CreateOutputs(state, tx_id, payout_outputs,
                    static_cast<uint32_t>(tx.outputs.size()));
      state->contracts.Put(tx.contract_id, outcome->next);
      receipt.state_digest = outcome->next->StateDigest();
      receipt.note = outcome->note;
      return receipt;
    }
  }
  return Status::Internal("unreachable transaction type");
}

Result<std::vector<Receipt>> ApplyBlockBody(LedgerState* state,
                                            const Block& block,
                                            const ChainParams& params) {
  if (block.txs.empty()) {
    return Status::InvalidArgument("block has no coinbase");
  }
  const Transaction& coinbase = block.txs[0];
  if (coinbase.type != TxType::kCoinbase || !coinbase.inputs.empty()) {
    return Status::InvalidArgument("first transaction must be a coinbase");
  }

  BlockEnv env{block.header.chain_id, block.header.height, block.header.time};
  std::vector<Receipt> receipts;
  receipts.reserve(block.txs.size());

  // Coinbase receipt placeholder; value rule checked after fee total known.
  Receipt coinbase_receipt;
  coinbase_receipt.tx_id = coinbase.Id();
  coinbase_receipt.note = "coinbase";
  receipts.push_back(coinbase_receipt);

  Amount total_fees = 0;
  for (size_t i = 1; i < block.txs.size(); ++i) {
    const Transaction& tx = block.txs[i];
    if (tx.type == TxType::kCoinbase) {
      return Status::InvalidArgument("duplicate coinbase");
    }
    AC3_ASSIGN_OR_RETURN(Receipt receipt, ApplyTransaction(state, tx, env));
    total_fees += tx.fee;
    receipts.push_back(std::move(receipt));
  }

  if (coinbase.TotalOutput() > params.block_reward + total_fees) {
    return Status::InvalidArgument("coinbase exceeds reward plus fees");
  }
  CreateOutputs(state, coinbase.Id(), coinbase.outputs);
  return receipts;
}

LedgerState GenesisState(const Transaction& genesis_tx) {
  LedgerState state;
  const crypto::Hash256 id = genesis_tx.Id();
  for (uint32_t i = 0; i < genesis_tx.outputs.size(); ++i) {
    state.utxos.Put(OutPoint{id, i}, genesis_tx.outputs[i]);
  }
  return state;
}

}  // namespace ac3::chain
