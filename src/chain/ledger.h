// Ledger state and deterministic transaction execution.
//
// A LedgerState is the materialized state of one branch of a blockchain:
// the UTXO set (the paper's asset ownership model, Section 2.2) plus the
// deployed contract snapshots. States are value types; the blockchain keeps
// one per block, so forks naturally own divergent contract states.
//
// Both maps are persistent (copy-on-write) trees: copying a LedgerState is
// O(1) and mutations path-copy O(log n) shared nodes, so per-block and
// per-candidate-transaction snapshots no longer cost O(state size). That
// is what keeps per-block engine cost sublinear in chain length (see
// README "Performance"). Iteration stays in key order, identical to the
// old std::map representation, so every fold is bit-for-bit reproducible.
//
// ApplyTransaction is the single execution path shared by miners (block
// assembly) and validators (block verification): "the validation is
// explicitly enforced in the storage layer" (Section 2.3).

#ifndef AC3_CHAIN_LEDGER_H_
#define AC3_CHAIN_LEDGER_H_

#include "src/chain/block.h"
#include "src/chain/params.h"
#include "src/chain/receipt.h"
#include "src/chain/transaction.h"
#include "src/common/persistent_map.h"
#include "src/contracts/contract.h"

namespace ac3::common {
class WorkerPool;
}

namespace ac3::chain {

/// Snapshot of one branch's state. Copies are O(1) and fully independent:
/// mutating a copy never affects the state it was copied from.
///
/// The UTXO set carries two incrementally-maintained aggregates — the
/// total liquid value and a per-owner balance map — so the per-step
/// engine queries (protocol funding checks, bench assertions) are O(1) /
/// O(log owners) instead of a full-set scan. All UTXO mutations go
/// through AddUtxo/SpendUtxo (ledger execution is the only writer), which
/// keeps the aggregates exact; the *Scan variants recompute them from the
/// set and are kept as the test oracle.
struct LedgerState {
  /// Unspent outputs: the current ownership of every liquid asset.
  PersistentMap<OutPoint, TxOutput> utxos;
  /// Live contract snapshots by contract id.
  PersistentMap<crypto::Hash256, contracts::ContractPtr> contracts;
  /// Running sum of utxos' values (exact mirror; see AddUtxo/SpendUtxo).
  Amount liquid_total = 0;
  /// Per-owner running balances; entries are erased when they hit zero,
  /// so the map's content is a pure function of the UTXO set.
  PersistentMap<crypto::PublicKey, Amount> balances;

  /// Sum of all liquid (UTXO) value — the maintained total, O(1).
  Amount LiquidValue() const { return liquid_total; }
  /// Full-scan recomputation of LiquidValue (test oracle).
  Amount LiquidValueScan() const;
  /// Sum of all value locked inside contracts.
  Amount LockedValue() const;
  /// Liquid + locked: conserved by every non-coinbase transaction.
  Amount TotalValue() const { return LiquidValue() + LockedValue(); }

  /// Balance owned by `owner` — the maintained map, O(log owners).
  Amount BalanceOf(const crypto::PublicKey& owner) const;
  /// Full-scan recomputation of BalanceOf (test oracle).
  Amount BalanceOfScan(const crypto::PublicKey& owner) const;

  /// Inserts an unspent output and updates the aggregates.
  void AddUtxo(const OutPoint& outpoint, const TxOutput& output);
  /// Erases an unspent output (which must exist) and updates the
  /// aggregates.
  void SpendUtxo(const OutPoint& outpoint);

  /// Looks up a contract snapshot.
  Result<contracts::ContractPtr> GetContract(const crypto::Hash256& id) const;
};

/// Block-level execution environment handed to contracts as implicit
/// parameters.
struct BlockEnv {
  ChainId chain_id = 0;
  uint64_t height = 0;
  TimePoint time = 0;
};

/// Validates and applies one non-coinbase transaction to `state` in place.
///
/// Outcomes:
///  * OK + success receipt        — applied, state advanced.
///  * OK + success=false receipt  — a contract guard failed; fees and
///                                  inputs were still consumed (the
///                                  Ethereum "reverted but included" model).
///  * error Status                — structurally invalid (bad signature,
///                                  missing input, value imbalance, unknown
///                                  contract). Such a transaction may not
///                                  appear in a valid block at all.
Result<Receipt> ApplyTransaction(LedgerState* state, const Transaction& tx,
                                 const BlockEnv& env);

/// The state writes one transaction performed, captured while executing
/// against a private snapshot and replayed onto the shared state by a
/// merger (the wave executor, the widened assembly loop) — the full
/// mutation vocabulary of ApplyTransaction.
struct TxWrites {
  std::vector<OutPoint> spent;
  std::vector<std::pair<OutPoint, TxOutput>> created;
  std::vector<std::pair<crypto::Hash256, contracts::ContractPtr>>
      contract_puts;
};

/// ApplyTransaction that additionally records every state mutation into
/// `*writes` (appended in execution order). Replaying the log through
/// SpendUtxo/AddUtxo/contracts.Put onto a state whose observed keys match
/// the execution snapshot reproduces the direct application exactly —
/// aggregates included, since the replay goes through the same
/// aggregate-maintaining mutators.
Result<Receipt> ApplyTransactionRecorded(LedgerState* state,
                                         const Transaction& tx,
                                         const BlockEnv& env,
                                         TxWrites* writes);

/// Applies a full block body (coinbase included) to `state`, returning the
/// receipts in transaction order. Enforces the coinbase value rule
/// (outputs <= block reward + total fees).
Result<std::vector<Receipt>> ApplyBlockBody(LedgerState* state,
                                            const Block& block,
                                            const ChainParams& params);

/// Parallel block-body execution — the serial loop's equivalence twin.
///
/// Returns exactly what ApplyBlockBody returns for the same inputs: same
/// receipts (revert ordering included), same error status on an invalid
/// body, same post-state content. The fast path fans out on `pool`:
/// signature verification runs for every transaction unconditionally
/// (pure per-tx), then the conflict analyzer (tx_conflict.h) schedules
/// the body into conflict-free waves and each wave executes concurrently
/// against an O(1) snapshot of the pre-wave state — the persistent maps'
/// atomic refcounts make concurrent snapshot reads safe, exactly as in
/// Blockchain::SubmitBlocks — with recorded writes merged serially in
/// transaction order. Anything the fast path cannot reproduce bit-for-bit
/// (a structurally invalid transaction, a bad signature, a duplicate
/// coinbase — all of which abort the block with a position-dependent
/// status) falls back to re-running ApplyBlockBody from the untouched
/// input state, so mid-block failure semantics are the serial ones by
/// construction.
///
/// Runs serially (delegating to ApplyBlockBody) when `pool` is null or
/// single-threaded, when the body is too small to amortize the fan-out,
/// or when the AC3_EXEC_SERIAL environment pin is set (any value but
/// "0"; mirrors AC3_SHA256_DISPATCH) — the serial loop stays the
/// always-available oracle, same discipline as MineHeaderScalar and
/// VisibleHeadScan.
Result<std::vector<Receipt>> ApplyBlockBodyParallel(LedgerState* state,
                                                    const Block& block,
                                                    const ChainParams& params,
                                                    common::WorkerPool* pool);

/// True when the AC3_EXEC_SERIAL environment pin forces every
/// ApplyBlockBodyParallel call down the serial path (read once, at first
/// use).
bool BlockExecutionPinnedSerial();

/// Builds the genesis state from initial allocations. The allocations are
/// materialized as outputs of a synthetic genesis transaction.
LedgerState GenesisState(const Transaction& genesis_tx);

}  // namespace ac3::chain

#endif  // AC3_CHAIN_LEDGER_H_
