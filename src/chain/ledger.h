// Ledger state and deterministic transaction execution.
//
// A LedgerState is the materialized state of one branch of a blockchain:
// the UTXO set (the paper's asset ownership model, Section 2.2) plus the
// deployed contract snapshots. States are value types; the blockchain keeps
// one per block, so forks naturally own divergent contract states.
//
// Both maps are persistent (copy-on-write) trees: copying a LedgerState is
// O(1) and mutations path-copy O(log n) shared nodes, so per-block and
// per-candidate-transaction snapshots no longer cost O(state size). That
// is what keeps per-block engine cost sublinear in chain length (see
// README "Performance"). Iteration stays in key order, identical to the
// old std::map representation, so every fold is bit-for-bit reproducible.
//
// ApplyTransaction is the single execution path shared by miners (block
// assembly) and validators (block verification): "the validation is
// explicitly enforced in the storage layer" (Section 2.3).

#ifndef AC3_CHAIN_LEDGER_H_
#define AC3_CHAIN_LEDGER_H_

#include "src/chain/block.h"
#include "src/chain/params.h"
#include "src/chain/receipt.h"
#include "src/chain/transaction.h"
#include "src/common/persistent_map.h"
#include "src/contracts/contract.h"

namespace ac3::chain {

/// Snapshot of one branch's state. Copies are O(1) and fully independent:
/// mutating a copy never affects the state it was copied from.
struct LedgerState {
  /// Unspent outputs: the current ownership of every liquid asset.
  PersistentMap<OutPoint, TxOutput> utxos;
  /// Live contract snapshots by contract id.
  PersistentMap<crypto::Hash256, contracts::ContractPtr> contracts;

  /// Sum of all liquid (UTXO) value.
  Amount LiquidValue() const;
  /// Sum of all value locked inside contracts.
  Amount LockedValue() const;
  /// Liquid + locked: conserved by every non-coinbase transaction.
  Amount TotalValue() const { return LiquidValue() + LockedValue(); }

  /// Balance owned by `owner` across the UTXO set.
  Amount BalanceOf(const crypto::PublicKey& owner) const;

  /// Looks up a contract snapshot.
  Result<contracts::ContractPtr> GetContract(const crypto::Hash256& id) const;
};

/// Block-level execution environment handed to contracts as implicit
/// parameters.
struct BlockEnv {
  ChainId chain_id = 0;
  uint64_t height = 0;
  TimePoint time = 0;
};

/// Validates and applies one non-coinbase transaction to `state` in place.
///
/// Outcomes:
///  * OK + success receipt        — applied, state advanced.
///  * OK + success=false receipt  — a contract guard failed; fees and
///                                  inputs were still consumed (the
///                                  Ethereum "reverted but included" model).
///  * error Status                — structurally invalid (bad signature,
///                                  missing input, value imbalance, unknown
///                                  contract). Such a transaction may not
///                                  appear in a valid block at all.
Result<Receipt> ApplyTransaction(LedgerState* state, const Transaction& tx,
                                 const BlockEnv& env);

/// Applies a full block body (coinbase included) to `state`, returning the
/// receipts in transaction order. Enforces the coinbase value rule
/// (outputs <= block reward + total fees).
Result<std::vector<Receipt>> ApplyBlockBody(LedgerState* state,
                                            const Block& block,
                                            const ChainParams& params);

/// Builds the genesis state from initial allocations. The allocations are
/// materialized as outputs of a synthetic genesis transaction.
LedgerState GenesisState(const Transaction& genesis_tx);

}  // namespace ac3::chain

#endif  // AC3_CHAIN_LEDGER_H_
