// A light node of a foreign blockchain — the second of Section 4.3's three
// cross-chain validation techniques.
//
// "A light node ... downloads only the block headers of a blockchain,
//  verifies the proof of work of these block headers, and downloads only
//  the blockchain branches that are associated with the transactions of
//  interest."
//
// The client ingests headers (in any order), verifies PoW and linkage,
// tracks the heaviest header chain, and answers inclusion queries from
// Merkle proofs served by full nodes. It stores O(headers) — no bodies, no
// UTXO set — which is the technique's advantage over full replication and
// its disadvantage versus the relay-contract approach (one checkpoint +
// per-query evidence) that the paper ultimately adopts; the ablation
// benchmark quantifies both.

#ifndef AC3_CHAIN_LIGHT_CLIENT_H_
#define AC3_CHAIN_LIGHT_CLIENT_H_

#include <optional>
#include <unordered_map>

#include "src/chain/block.h"
#include "src/chain/blockchain.h"
#include "src/crypto/merkle.h"

namespace ac3::chain {

/// Header-only view of one foreign chain.
class LightClient {
 public:
  /// `genesis` anchors the client; `difficulty_bits` is the PoW the chain's
  /// consensus demands of every header.
  LightClient(BlockHeader genesis, uint32_t difficulty_bits);

  /// Validates and stores one header: correct chain id, declared difficulty
  /// matching the consensus requirement, valid PoW, known parent, and
  /// height = parent height + 1. Duplicates are accepted idempotently.
  /// Orphans (unknown parent) are rejected — feed headers oldest-first.
  Status AcceptHeader(const BlockHeader& header);

  /// Convenience: accept a batch oldest-first, stopping at the first error.
  Status AcceptHeaders(const std::vector<BlockHeader>& headers);

  /// Syncs from a full node's canonical chain (what a real light client
  /// does over the P2P network).
  Status SyncFrom(const Blockchain& full_node);

  /// The heaviest known tip (ties broken by first arrival).
  const BlockHeader& head() const;
  uint64_t height() const { return head().height; }
  size_t header_count() const { return headers_.size(); }

  /// True when `hash` is on the heaviest known header chain.
  bool IsCanonical(const crypto::Hash256& hash) const;

  /// Confirmations of a canonical header: head height - header height.
  std::optional<uint64_t> ConfirmationsOf(const crypto::Hash256& hash) const;

  /// The light-client inclusion check: does `tx_root_leaf` (a transaction
  /// id as Merkle leaf) belong to the block `block_hash` under `proof`,
  /// with that block canonical and buried under >= `min_confirmations`?
  /// This is what "downloads only the branches associated with the
  /// transactions of interest" amounts to: the full node serves the proof,
  /// the light client verifies it against its header store.
  Status VerifyInclusion(const crypto::Hash256& block_hash,
                         const crypto::Hash256& tx_root_leaf,
                         const crypto::MerkleProof& proof,
                         uint64_t min_confirmations) const;

  /// Same for receipts (proved against the header's receipt root).
  Status VerifyReceiptInclusion(const crypto::Hash256& block_hash,
                                const crypto::Hash256& receipt_leaf,
                                const crypto::MerkleProof& proof,
                                uint64_t min_confirmations) const;

 private:
  struct Entry {
    BlockHeader header;
    double total_work = 0;
    uint64_t arrival_seq = 0;
  };

  Status VerifyAgainstRoot(const crypto::Hash256& block_hash,
                           const crypto::Hash256& leaf,
                           const crypto::MerkleProof& proof,
                           uint64_t min_confirmations, bool receipt) const;

  uint32_t difficulty_bits_;
  std::unordered_map<crypto::Hash256, Entry> headers_;
  crypto::Hash256 genesis_hash_;
  crypto::Hash256 head_hash_;
  uint64_t next_arrival_seq_ = 0;
};

}  // namespace ac3::chain

#endif  // AC3_CHAIN_LIGHT_CLIENT_H_
