#include "src/chain/params.h"

namespace ac3::chain {

namespace {
/// Capacity so that (max_block_txs / block_interval_s) / kThroughputScale
/// reproduces the paper's Table 1 tps figure for the chain.
size_t CapacityFor(double real_tps, Duration interval) {
  double capacity = real_tps * ToSeconds(interval) * kThroughputScale;
  return capacity < 1.0 ? 1 : static_cast<size_t>(capacity + 0.5);
}
}  // namespace

ChainParams BitcoinParams() {
  ChainParams p;
  p.name = "Bitcoin";
  p.block_interval = Milliseconds(600);
  p.difficulty_bits = 10;
  p.real_tps = 7.0;
  p.real_blocks_per_hour = 6.0;
  p.attack_cost_per_hour_usd = 300'000.0;  // Paper §6.3 figure.
  p.max_block_txs = CapacityFor(p.real_tps, p.block_interval);
  p.stable_depth = 6;
  return p;
}

ChainParams EthereumParams() {
  ChainParams p;
  p.name = "Ethereum";
  p.block_interval = Milliseconds(150);
  p.difficulty_bits = 10;
  p.real_tps = 25.0;
  p.real_blocks_per_hour = 240.0;
  p.attack_cost_per_hour_usd = 100'000.0;  // crypto51.app-era estimate.
  p.max_block_txs = CapacityFor(p.real_tps, p.block_interval);
  p.stable_depth = 6;
  return p;
}

ChainParams LitecoinParams() {
  ChainParams p;
  p.name = "Litecoin";
  p.block_interval = Milliseconds(250);
  p.difficulty_bits = 10;
  p.real_tps = 56.0;
  p.real_blocks_per_hour = 24.0;
  p.attack_cost_per_hour_usd = 25'000.0;
  p.max_block_txs = CapacityFor(p.real_tps, p.block_interval);
  p.stable_depth = 6;
  return p;
}

ChainParams BitcoinCashParams() {
  ChainParams p;
  p.name = "BitcoinCash";
  p.block_interval = Milliseconds(600);
  p.difficulty_bits = 10;
  p.real_tps = 61.0;
  p.real_blocks_per_hour = 6.0;
  p.attack_cost_per_hour_usd = 10'000.0;
  p.max_block_txs = CapacityFor(p.real_tps, p.block_interval);
  p.stable_depth = 6;
  return p;
}

ChainParams TestWitnessParams() {
  ChainParams p;
  p.name = "Witness";
  p.block_interval = Milliseconds(100);
  p.difficulty_bits = 8;
  p.real_tps = 25.0;
  p.real_blocks_per_hour = 240.0;
  p.attack_cost_per_hour_usd = 100'000.0;
  p.max_block_txs = 64;
  p.stable_depth = 3;
  return p;
}

ChainParams TestChainParams() {
  ChainParams p;
  p.name = "TestChain";
  p.block_interval = Milliseconds(100);
  p.difficulty_bits = 8;
  p.real_tps = 25.0;
  p.real_blocks_per_hour = 240.0;
  p.attack_cost_per_hour_usd = 100'000.0;
  p.max_block_txs = 64;
  p.stable_depth = 3;
  return p;
}

}  // namespace ac3::chain
