// Transactions: the paper's asset transactional model (Section 2.3).
//
// A transaction "takes one or more input assets owned by one identity and
// results in one or more output assets" — i.e. a UTXO model with merge and
// split (the paper's Figure 2). Two additional transaction types carry the
// smart-contract machinery of Section 2.3: contract deployment (with an
// optional locked msg.value) and contract function calls.
//
// Every transaction is a digital signature over its canonical encoding;
// miners validate that the signer owns all inputs and that value is
// conserved (inputs = outputs + fee + locked value).

#ifndef AC3_CHAIN_TRANSACTION_H_
#define AC3_CHAIN_TRANSACTION_H_

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "src/chain/params.h"
#include "src/common/bytes.h"
#include "src/crypto/hash256.h"
#include "src/crypto/schnorr.h"

namespace ac3::chain {

/// Reference to a prior transaction output (an unspent asset).
struct OutPoint {
  crypto::Hash256 tx_id;
  uint32_t index = 0;

  auto operator<=>(const OutPoint&) const = default;
};

/// One output asset: a value owned by an identity (public key).
struct TxOutput {
  Amount value = 0;
  crypto::PublicKey owner;

  auto operator<=>(const TxOutput&) const = default;
};

enum class TxType : uint8_t {
  kCoinbase = 1,  ///< Miner reward; first transaction of a block.
  kTransfer = 2,  ///< Plain asset merge/split transfer (Figure 2).
  kDeploy = 3,    ///< Smart-contract deployment ("publishing").
  kCall = 4,      ///< Smart-contract function invocation.
};

const char* TxTypeName(TxType type);

/// A signed transaction. For kDeploy, `contract_kind` selects the contract
/// class and `payload` carries the constructor arguments; `contract_value`
/// is msg.value, locked in the contract. For kCall, `contract_id` targets a
/// deployed contract and `function`/`payload` name the invocation.
class Transaction {
 public:
  TxType type = TxType::kTransfer;
  ChainId chain_id = 0;
  std::vector<OutPoint> inputs;
  std::vector<TxOutput> outputs;
  Amount fee = 0;
  /// Owner of every input and msg.sender of contract operations.
  crypto::PublicKey signer;
  /// Uniquifier so otherwise-identical transactions get distinct ids.
  uint64_t nonce = 0;

  // Contract fields (kDeploy / kCall).
  std::string contract_kind;
  crypto::Hash256 contract_id;
  std::string function;
  Bytes payload;
  Amount contract_value = 0;

  crypto::Signature signature;

  /// Canonical bytes covered by the signature (everything but the
  /// signature itself).
  Bytes SigningPayload() const;
  /// Full canonical encoding, including the signature.
  Bytes Encode() const;
  static Result<Transaction> Decode(const Bytes& encoded);

  /// Transaction id: SHA-256 of the full encoding.
  crypto::Hash256 Id() const;

  /// Signs with `key` and records the signer public key.
  void SignWith(const crypto::KeyPair& key);
  /// Verifies the signature against `signer`. Coinbases are unsigned.
  bool VerifySignature() const;

  /// Sum of declared output values.
  Amount TotalOutput() const;
};

}  // namespace ac3::chain

#endif  // AC3_CHAIN_TRANSACTION_H_
