// Execution receipts: the verifiable record of a contract state change.
//
// Each block carries one receipt per transaction, committed by a dedicated
// Merkle root in the header (receipt_root). A receipt records whether the
// contract operation succeeded and the contract's state digest afterwards.
// Receipts are what cross-chain evidence proves (Section 4.3): "SCw's state
// is RDauth" becomes "a successful receipt whose state digest encodes
// RDauth is included in a witness-chain block buried under d blocks".

#ifndef AC3_CHAIN_RECEIPT_H_
#define AC3_CHAIN_RECEIPT_H_

#include <string>

#include "src/common/bytes.h"
#include "src/crypto/hash256.h"

namespace ac3::chain {

struct Receipt {
  crypto::Hash256 tx_id;
  /// True when the operation's `requires(...)` guards all held.
  bool success = true;
  /// Target contract (zero hash for plain transfers / coinbases).
  crypto::Hash256 contract_id;
  /// Canonical digest of the contract state *after* this transaction (the
  /// pre-state when success is false). Empty for non-contract txs.
  Bytes state_digest;
  /// Human-readable note for logs ("redeemed", "guard failed: ...").
  std::string note;

  Bytes Encode() const;
  static Result<Receipt> Decode(const Bytes& encoded);

  /// Merkle leaf for the receipt tree.
  crypto::Hash256 LeafHash() const;
};

}  // namespace ac3::chain

#endif  // AC3_CHAIN_RECEIPT_H_
