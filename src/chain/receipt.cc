#include "src/chain/receipt.h"

namespace ac3::chain {

Bytes Receipt::Encode() const {
  ByteWriter w;
  w.PutRaw(tx_id.bytes(), crypto::Hash256::kSize);
  w.PutU8(success ? 1 : 0);
  w.PutRaw(contract_id.bytes(), crypto::Hash256::kSize);
  w.PutBytes(state_digest);
  w.PutString(note);
  return w.Take();
}

Result<Receipt> Receipt::Decode(const Bytes& encoded) {
  ByteReader r(encoded);
  Receipt receipt;
  AC3_ASSIGN_OR_RETURN(Bytes tx_raw, r.GetRaw(crypto::Hash256::kSize));
  std::array<uint8_t, crypto::Hash256::kSize> arr{};
  std::copy(tx_raw.begin(), tx_raw.end(), arr.begin());
  receipt.tx_id = crypto::Hash256(arr);
  AC3_ASSIGN_OR_RETURN(uint8_t success, r.GetU8());
  receipt.success = success != 0;
  AC3_ASSIGN_OR_RETURN(Bytes contract_raw, r.GetRaw(crypto::Hash256::kSize));
  std::copy(contract_raw.begin(), contract_raw.end(), arr.begin());
  receipt.contract_id = crypto::Hash256(arr);
  AC3_ASSIGN_OR_RETURN(receipt.state_digest, r.GetBytes());
  AC3_ASSIGN_OR_RETURN(receipt.note, r.GetString());
  return receipt;
}

crypto::Hash256 Receipt::LeafHash() const {
  return crypto::Hash256::Of(Encode());
}

}  // namespace ac3::chain
