#include "src/chain/block.h"

#include <cassert>
#include <cstring>

#include "src/crypto/merkle.h"

namespace ac3::chain {

namespace {
Result<crypto::Hash256> ReadHash(ByteReader* r) {
  AC3_ASSIGN_OR_RETURN(Bytes raw, r->GetRaw(crypto::Hash256::kSize));
  std::array<uint8_t, crypto::Hash256::kSize> arr{};
  std::copy(raw.begin(), raw.end(), arr.begin());
  return crypto::Hash256(arr);
}
}  // namespace

namespace {
inline uint8_t* PutLe32(uint8_t* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) *out++ = static_cast<uint8_t>(v >> (8 * i));
  return out;
}
inline uint8_t* PutLe64(uint8_t* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) *out++ = static_cast<uint8_t>(v >> (8 * i));
  return out;
}
}  // namespace

void BlockHeader::EncodeTo(uint8_t (&out)[kEncodedSize]) const {
  uint8_t* p = out;
  p = PutLe32(p, chain_id);
  p = PutLe64(p, height);
  std::memcpy(p, prev_hash.bytes(), crypto::Hash256::kSize);
  p += crypto::Hash256::kSize;
  std::memcpy(p, tx_root.bytes(), crypto::Hash256::kSize);
  p += crypto::Hash256::kSize;
  std::memcpy(p, receipt_root.bytes(), crypto::Hash256::kSize);
  p += crypto::Hash256::kSize;
  p = PutLe64(p, static_cast<uint64_t>(time));
  p = PutLe32(p, difficulty_bits);
  p = PutLe64(p, nonce);
  assert(p == out + kEncodedSize);
}

Bytes BlockHeader::Encode() const {
  uint8_t buf[kEncodedSize];
  EncodeTo(buf);
  return Bytes(buf, buf + kEncodedSize);
}

Result<BlockHeader> BlockHeader::Decode(ByteReader* reader) {
  BlockHeader h;
  AC3_ASSIGN_OR_RETURN(h.chain_id, reader->GetU32());
  AC3_ASSIGN_OR_RETURN(h.height, reader->GetU64());
  AC3_ASSIGN_OR_RETURN(h.prev_hash, ReadHash(reader));
  AC3_ASSIGN_OR_RETURN(h.tx_root, ReadHash(reader));
  AC3_ASSIGN_OR_RETURN(h.receipt_root, ReadHash(reader));
  AC3_ASSIGN_OR_RETURN(h.time, reader->GetI64());
  AC3_ASSIGN_OR_RETURN(h.difficulty_bits, reader->GetU32());
  AC3_ASSIGN_OR_RETURN(h.nonce, reader->GetU64());
  return h;
}

crypto::Hash256 BlockHeader::Hash() const {
  uint8_t buf[kEncodedSize];
  EncodeTo(buf);
  return crypto::Hash256::DoubleOf(buf);
}

std::vector<crypto::Hash256> Block::TxLeaves() const {
  std::vector<crypto::Hash256> leaves;
  leaves.reserve(txs.size());
  for (const Transaction& tx : txs) leaves.push_back(tx.Id());
  return leaves;
}

std::vector<crypto::Hash256> Block::ReceiptLeaves() const {
  std::vector<crypto::Hash256> leaves;
  leaves.reserve(receipts.size());
  for (const Receipt& receipt : receipts) leaves.push_back(receipt.LeafHash());
  return leaves;
}

crypto::Hash256 Block::ComputeTxRoot() const {
  return crypto::MerkleTree::RootOf(TxLeaves());
}

crypto::Hash256 Block::ComputeReceiptRoot() const {
  return crypto::MerkleTree::RootOf(ReceiptLeaves());
}

}  // namespace ac3::chain
