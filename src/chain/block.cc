#include "src/chain/block.h"

#include "src/crypto/merkle.h"

namespace ac3::chain {

namespace {
Result<crypto::Hash256> ReadHash(ByteReader* r) {
  AC3_ASSIGN_OR_RETURN(Bytes raw, r->GetRaw(crypto::Hash256::kSize));
  std::array<uint8_t, crypto::Hash256::kSize> arr{};
  std::copy(raw.begin(), raw.end(), arr.begin());
  return crypto::Hash256(arr);
}
}  // namespace

Bytes BlockHeader::Encode() const {
  ByteWriter w;
  w.PutU32(chain_id);
  w.PutU64(height);
  w.PutRaw(prev_hash.bytes(), crypto::Hash256::kSize);
  w.PutRaw(tx_root.bytes(), crypto::Hash256::kSize);
  w.PutRaw(receipt_root.bytes(), crypto::Hash256::kSize);
  w.PutI64(time);
  w.PutU32(difficulty_bits);
  w.PutU64(nonce);
  return w.Take();
}

Result<BlockHeader> BlockHeader::Decode(ByteReader* reader) {
  BlockHeader h;
  AC3_ASSIGN_OR_RETURN(h.chain_id, reader->GetU32());
  AC3_ASSIGN_OR_RETURN(h.height, reader->GetU64());
  AC3_ASSIGN_OR_RETURN(h.prev_hash, ReadHash(reader));
  AC3_ASSIGN_OR_RETURN(h.tx_root, ReadHash(reader));
  AC3_ASSIGN_OR_RETURN(h.receipt_root, ReadHash(reader));
  AC3_ASSIGN_OR_RETURN(h.time, reader->GetI64());
  AC3_ASSIGN_OR_RETURN(h.difficulty_bits, reader->GetU32());
  AC3_ASSIGN_OR_RETURN(h.nonce, reader->GetU64());
  return h;
}

crypto::Hash256 BlockHeader::Hash() const {
  return crypto::Hash256::DoubleOf(Encode());
}

std::vector<crypto::Hash256> Block::TxLeaves() const {
  std::vector<crypto::Hash256> leaves;
  leaves.reserve(txs.size());
  for (const Transaction& tx : txs) leaves.push_back(tx.Id());
  return leaves;
}

std::vector<crypto::Hash256> Block::ReceiptLeaves() const {
  std::vector<crypto::Hash256> leaves;
  leaves.reserve(receipts.size());
  for (const Receipt& receipt : receipts) leaves.push_back(receipt.LeafHash());
  return leaves;
}

crypto::Hash256 Block::ComputeTxRoot() const {
  return crypto::MerkleTree::RootOf(TxLeaves());
}

crypto::Hash256 Block::ComputeReceiptRoot() const {
  return crypto::MerkleTree::RootOf(ReceiptLeaves());
}

}  // namespace ac3::chain
