// ChainIndex: the block-entry store and chain-global query indexes behind
// one narrow facade.
//
// A Blockchain used to hold three raw `std::unordered_map`s (hash ->
// entry, tx -> occurrences, contract -> call entries) and even leaked one
// of them through an `entries()` accessor, which welded every caller to
// the backing container. ChainIndex is the seam that un-welds them: the
// fork-tree store and both hot query indexes live here behind FindEntry /
// FindTx / FindCall / OccurrencesOf / EntryCount / ForEachEntry, and the
// backing storage is the sharded, slab-backed ShardedIndex
// (src/common/sharded_index.h) — swappable, memory-accounted, and
// testable against its own single-map oracle mode without touching any
// caller.
//
// Branch awareness stays out: ChainIndex knows every fork-sibling
// occurrence of a transaction, but *which* occurrence is canonical
// depends on the head, so the canonical-filtering queries take an
// `on_branch` predicate from the Blockchain. That keeps the facade a pure
// index — no head pointer, no ancestry logic — and keeps the longest-chain
// rule in exactly one place.

#ifndef AC3_CHAIN_CHAIN_INDEX_H_
#define AC3_CHAIN_CHAIN_INDEX_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/chain/block.h"
#include "src/chain/ledger.h"
#include "src/common/sharded_index.h"

namespace ac3::chain {

/// A contract call included in a block (index into block.txs).
struct CallRecord {
  /// The contract the call targeted.
  crypto::Hash256 contract_id;
  /// The function invoked (e.g. "redeem").
  std::string function;
  /// Index of the calling transaction within its block.
  uint32_t tx_index = 0;
  /// Whether the call's receipt reported success.
  bool success = false;
};

/// A validated block plus branch-local derived data.
///
/// Branch-cumulative data is chained, not materialized: each entry keeps
/// only its own block's transaction ids (`tx_index`) plus a `parent` link
/// and a skip pointer for O(log height) ancestor jumps, so storing a block
/// costs O(block size) instead of O(chain length). "Is this transaction
/// already on the branch?" is answered by Blockchain::TxOnBranch through
/// the ChainIndex occurrence lists.
struct BlockEntry {
  /// The validated block itself.
  Block block;
  /// The block's header hash (its identity in the store).
  crypto::Hash256 hash;
  /// Cumulative expected work from genesis (longest-chain metric).
  double total_work = 0;
  /// When the block reached the store (simulated time).
  TimePoint arrival_time = 0;
  /// First-seen order; ties in total work keep the earlier block.
  uint64_t arrival_seq = 0;
  /// State after applying this block to its parent's state (a persistent
  /// snapshot sharing all unmodified structure with the parent's state).
  LedgerState state;
  /// Parent entry (nullptr for genesis). Entry pointers are stable.
  const BlockEntry* parent = nullptr;
  /// Ancestor jump pointer (Bitcoin's pskip scheme) for GetAncestor.
  const BlockEntry* skip = nullptr;
  /// Number of transactions included on this branch, genesis..this block.
  uint64_t included_tx_count = 0;
  /// Transaction id -> index within THIS block only (the per-entry delta).
  std::unordered_map<crypto::Hash256, uint32_t> tx_index;
  /// Contract calls in this block (for watching redeem/refund events).
  std::vector<CallRecord> calls;

  /// The block's height (shorthand for block.header.height).
  uint64_t height() const { return block.header.height; }
};

/// One on-chain location of a transaction: the entry holding it and the
/// transaction's index inside that entry's block. Also the unit of the
/// occurrence lists — a transaction may occur in several fork-sibling
/// blocks, but at most once per branch.
struct TxLocation {
  /// The entry whose block includes the transaction.
  const BlockEntry* entry = nullptr;
  /// The transaction's index within that block.
  uint32_t index = 0;
};

/// The per-chain entry store + query indexes. Mutation (Store) is
/// single-threaded; const queries may run concurrently between mutations
/// — the Blockchain's parallel-validation discipline.
class ChainIndex {
 public:
  /// Construction knobs, forwarded to the backing ShardedIndexes.
  struct Options {
    /// Shards per index (rounded up to a power of two).
    size_t shards = 16;
    /// True backs every index with the single-map oracle — the reference
    /// mode equivalence tests and the many-chain bench compare against.
    bool oracle = false;
  };

  /// An empty index with default options.
  ChainIndex() : ChainIndex(Options{}) {}

  /// An empty index with the given backing options.
  explicit ChainIndex(Options options)
      : entries_(IndexOptions<EntryIndex>(options)),
        tx_occurrences_(IndexOptions<TxIndex>(options)),
        contract_calls_(IndexOptions<CallIndex>(options)) {}

  /// Stores `entry` under `hash` (which must be new) and records its
  /// transactions and contract calls in the query indexes. Returns the
  /// stable stored entry.
  BlockEntry* Store(const crypto::Hash256& hash, BlockEntry entry);

  /// The stored entry for `hash`, or nullptr.
  const BlockEntry* FindEntry(const crypto::Hash256& hash) const {
    return entries_.Find(hash);
  }

  /// True when `hash` is stored.
  bool Contains(const crypto::Hash256& hash) const {
    return entries_.Contains(hash);
  }

  /// Stored entries (every fork, genesis included).
  size_t EntryCount() const { return entries_.size(); }

  /// Visits every stored (hash, entry) in the deterministic sharded order
  /// (shard-major, insertion order within a shard). The only sanctioned
  /// full scan — there is deliberately no raw map accessor.
  template <typename Fn>
  void ForEachEntry(Fn&& fn) const {
    entries_.ForEach(fn);
  }

  /// Every stored occurrence of `tx_id` across all forks (empty span when
  /// the transaction is unknown). Valid until the next Store.
  std::span<const TxLocation> OccurrencesOf(const crypto::Hash256& tx_id) const {
    const std::vector<TxLocation>* list = tx_occurrences_.Find(tx_id);
    if (list == nullptr) return {};
    return {list->data(), list->size()};
  }

  /// The occurrence of `tx_id` on the branch selected by `on_branch`
  /// (a predicate over BlockEntry). At most one occurrence lies on any
  /// branch — duplicates are invalid per branch — so the first hit is THE
  /// location.
  template <typename OnBranch>
  std::optional<TxLocation> FindTx(const crypto::Hash256& tx_id,
                                   OnBranch&& on_branch) const {
    for (const TxLocation& occurrence : OccurrencesOf(tx_id)) {
      if (on_branch(*occurrence.entry)) return occurrence;
    }
    return std::nullopt;
  }

  /// The newest on-branch call of `function` on `contract_id` (optionally
  /// only successful calls), scanning only entries known to contain calls
  /// on that contract. `on_branch` selects the branch, as in FindTx.
  template <typename OnBranch>
  std::optional<TxLocation> FindCall(const crypto::Hash256& contract_id,
                                     const std::string& function,
                                     bool require_success,
                                     OnBranch&& on_branch) const {
    const std::vector<const BlockEntry*>* list =
        contract_calls_.Find(contract_id);
    if (list == nullptr) return std::nullopt;
    // Newest on-branch entry containing a matching call; within an entry,
    // calls are scanned in block order (same answer a head-to-genesis walk
    // would produce, without visiting call-free blocks).
    const BlockEntry* best_entry = nullptr;
    uint32_t best_index = 0;
    for (const BlockEntry* entry : *list) {
      if (best_entry != nullptr && entry->height() <= best_entry->height()) {
        continue;
      }
      if (!on_branch(*entry)) continue;
      for (const CallRecord& call : entry->calls) {
        if (call.contract_id == contract_id && call.function == function &&
            (!require_success || call.success)) {
          best_entry = entry;
          best_index = call.tx_index;
          break;
        }
      }
    }
    if (best_entry == nullptr) return std::nullopt;
    return TxLocation{best_entry, best_index};
  }

  /// Slab bytes reserved across all three backing indexes (the number the
  /// many-chain bench's memory ceiling bounds). Excludes value-owned heap.
  size_t bytes_reserved() const {
    return entries_.bytes_reserved() + tx_occurrences_.bytes_reserved() +
           contract_calls_.bytes_reserved();
  }

 private:
  using EntryIndex = ShardedIndex<crypto::Hash256, BlockEntry>;
  using TxIndex = ShardedIndex<crypto::Hash256, std::vector<TxLocation>>;
  using CallIndex =
      ShardedIndex<crypto::Hash256, std::vector<const BlockEntry*>>;

  template <typename Index>
  static typename Index::Options IndexOptions(const Options& options) {
    typename Index::Options out;
    out.shards = options.shards;
    out.oracle = options.oracle;
    return out;
  }

  EntryIndex entries_;
  TxIndex tx_occurrences_;
  CallIndex contract_calls_;
};

}  // namespace ac3::chain

#endif  // AC3_CHAIN_CHAIN_INDEX_H_
