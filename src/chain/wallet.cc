#include "src/chain/wallet.h"

namespace ac3::chain {

Amount Wallet::SpendableBalance(const LedgerState& state) const {
  Amount total = 0;
  for (const auto& [outpoint, output] : state.utxos) {
    if (output.owner == key_.public_key() && reserved_.count(outpoint) == 0) {
      total += output.value;
    }
  }
  return total;
}

Result<std::pair<std::vector<OutPoint>, Amount>> Wallet::SelectInputs(
    const LedgerState& state, Amount needed) {
  std::vector<OutPoint> inputs;
  Amount total = 0;
  for (const auto& [outpoint, output] : state.utxos) {
    if (output.owner != key_.public_key()) continue;
    if (reserved_.count(outpoint) > 0) continue;
    inputs.push_back(outpoint);
    total += output.value;
    if (total >= needed) break;
  }
  if (total < needed) {
    return Status::FailedPrecondition(
        "insufficient spendable balance: have " + std::to_string(total) +
        ", need " + std::to_string(needed));
  }
  return std::make_pair(std::move(inputs), total);
}

Result<Transaction> Wallet::Finalize(Transaction tx, const LedgerState& state,
                                     Amount spend_total) {
  AC3_ASSIGN_OR_RETURN(auto selection, SelectInputs(state, spend_total));
  auto& [inputs, total] = selection;
  tx.inputs = inputs;
  if (total > spend_total) {
    // Change back to self (the "split" of Figure 2's TX2).
    tx.outputs.push_back(TxOutput{total - spend_total, key_.public_key()});
  }
  tx.SignWith(key_);
  for (const OutPoint& in : inputs) reserved_.insert(in);
  return tx;
}

Result<Transaction> Wallet::BuildTransfer(const LedgerState& state,
                                          const crypto::PublicKey& recipient,
                                          Amount amount, Amount fee,
                                          uint64_t nonce) {
  Transaction tx;
  tx.type = TxType::kTransfer;
  tx.chain_id = chain_id_;
  tx.fee = fee;
  tx.nonce = nonce;
  tx.outputs.push_back(TxOutput{amount, recipient});
  return Finalize(std::move(tx), state, amount + fee);
}

Result<Transaction> Wallet::BuildDeploy(const LedgerState& state,
                                        const std::string& kind,
                                        const Bytes& payload,
                                        Amount locked_value, Amount fee,
                                        uint64_t nonce) {
  Transaction tx;
  tx.type = TxType::kDeploy;
  tx.chain_id = chain_id_;
  tx.fee = fee;
  tx.nonce = nonce;
  tx.contract_kind = kind;
  tx.payload = payload;
  tx.contract_value = locked_value;
  return Finalize(std::move(tx), state, locked_value + fee);
}

Result<Transaction> Wallet::BuildCall(const LedgerState& state,
                                      const crypto::Hash256& contract_id,
                                      const std::string& function,
                                      const Bytes& args, Amount fee,
                                      uint64_t nonce) {
  Transaction tx;
  tx.type = TxType::kCall;
  tx.chain_id = chain_id_;
  tx.fee = fee;
  tx.nonce = nonce;
  tx.contract_id = contract_id;
  tx.function = function;
  tx.payload = args;
  return Finalize(std::move(tx), state, fee);
}

}  // namespace ac3::chain
