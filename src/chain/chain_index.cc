#include "src/chain/chain_index.h"

#include <cassert>
#include <utility>
#include <vector>

namespace ac3::chain {

BlockEntry* ChainIndex::Store(const crypto::Hash256& hash, BlockEntry entry) {
  auto [stored, inserted] = entries_.Emplace(hash, std::move(entry));
  assert(inserted && "Store() requires an unseen block hash");
  (void)inserted;
  for (const auto& [tx_id, index] : stored->tx_index) {
    tx_occurrences_.GetOrCreate(tx_id).push_back(TxLocation{stored, index});
  }
  for (const CallRecord& call : stored->calls) {
    // One occurrence per contract even with several calls in the block.
    std::vector<const BlockEntry*>& list =
        contract_calls_.GetOrCreate(call.contract_id);
    if (list.empty() || list.back() != stored) list.push_back(stored);
  }
  return stored;
}

}  // namespace ac3::chain
