// The blockchain: a fork tree of validated blocks with the longest-chain
// (most cumulative work) rule.
//
// Every validated block keeps its own post-state snapshot, so contract
// state is a pure function of the branch — a reorg "reverts" contract state
// simply by the head moving (DESIGN.md, design decision 1). This is the
// machinery behind the paper's fork discussion (Section 4.2): two
// conflicting SCw states can transiently live on two forks, and the chain
// converges to one of them.

#ifndef AC3_CHAIN_BLOCKCHAIN_H_
#define AC3_CHAIN_BLOCKCHAIN_H_

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "src/chain/block.h"
#include "src/chain/chain_index.h"
#include "src/chain/ledger.h"
#include "src/chain/params.h"
#include "src/common/random.h"

namespace ac3::chain {

class Blockchain {
 public:
  /// Creates the chain with a genesis block materializing `allocations`
  /// (initial asset owners, e.g. experiment participants' funding).
  /// `index_options` tunes the ChainIndex backing storage (shard count,
  /// oracle mode) — the default fits a production chain; equivalence
  /// harnesses drive a second chain in oracle mode.
  Blockchain(ChainParams params, std::vector<TxOutput> allocations,
             ChainIndex::Options index_options = {});
  ~Blockchain();  // Out-of-line: exec_pool_ holds an incomplete type here.

  const ChainParams& params() const { return params_; }
  ChainId id() const { return params_.id; }

  // ----------------------------------------------------------- block store

  /// Fully validates `block` (PoW, linkage, roots, transaction execution,
  /// receipt equality) and stores it. The canonical head moves only when
  /// the new branch has strictly more work.
  Status SubmitBlock(const Block& block, TimePoint arrival_time);

  /// Per-block outcome of one SubmitBlocks batch.
  struct BatchSubmitResult {
    size_t accepted = 0;  ///< Blocks validated and stored.
    /// One status per input block, in input order — exactly what a serial
    /// SubmitBlock loop over the same sequence would have returned.
    std::vector<Status> statuses;
  };

  /// Batch ingestion with parallel validation across independent forks.
  ///
  /// Semantically identical to calling SubmitBlock(block, arrival_time)
  /// on each element in order — same statuses, same stored entries, same
  /// head movements and listener callbacks, same arrival sequence — but
  /// validation (PoW, roots, transaction re-execution against the parent
  /// snapshot) runs on `threads` workers for every group of blocks whose
  /// parents are already stored. Blocks extending fork siblings are
  /// mutually independent, so a wide fork flood (or a node catching up on
  /// several branches at once) validates with per-branch parallelism;
  /// commits stay serial and in input order, which is what keeps the
  /// golden determinism fingerprints byte-identical whatever `threads`
  /// is. Order batches level-major (parents before children, independent
  /// siblings adjacent) for maximum per-round width; a purely linear
  /// chain degrades gracefully to serial cost. The fan-out runs on the
  /// shared common::WorkerPool primitive, whose ResolveThreads policy
  /// maps `threads <= 0` to hardware_concurrency() clamped to >= 1.
  ///
  /// Validation reads only committed state (the persistent snapshots'
  /// atomic refcounts make cross-thread sharing of ledger structure safe);
  /// a child in the same batch is validated in a later round, after its
  /// parent's commit.
  BatchSubmitResult SubmitBlocks(const std::vector<Block>& blocks,
                                 TimePoint arrival_time, int threads = 0);

  const BlockEntry* genesis() const { return genesis_; }
  /// Canonical tip.
  const BlockEntry* head() const { return head_; }
  const BlockEntry* Get(const crypto::Hash256& hash) const;
  /// Height of the canonical tip.
  uint64_t height() const { return head_->block.header.height; }
  size_t block_count() const { return index_.EntryCount(); }
  /// The chain's entry store + query indexes. The only way to reach the
  /// index internals — there is no raw map accessor.
  const ChainIndex& index() const { return index_; }
  /// Visits every stored (hash, entry) — all forks, genesis included — in
  /// ChainIndex's deterministic order. Shorthand for index().ForEachEntry.
  template <typename Fn>
  void ForEachEntry(Fn&& fn) const {
    index_.ForEachEntry(fn);
  }
  /// Every entry (genesis included) in arrival order — an append-only feed
  /// consumers (the mining network's head trackers) index into.
  const std::vector<const BlockEntry*>& arrival_order() const {
    return arrival_order_;
  }

  // ------------------------------------------------- head subscriptions

  /// Fires after the canonical head moves (extension or reorg), with the
  /// store fully indexed — subscribers may query any canonical API. This is
  /// the substrate reactive protocol engines wake on instead of polling:
  /// confirmations only ever change when the head moves, so one callback
  /// per head movement replaces O(duration / poll_interval) timer events.
  /// `old_head` is the previous canonical tip. Callbacks run synchronously
  /// inside SubmitBlock; they must not submit blocks reentrantly.
  using HeadListener = std::function<void(const BlockEntry& old_head)>;
  using SubscriptionId = uint64_t;
  SubscriptionId SubscribeHead(HeadListener listener);
  /// Unknown ids are ignored (idempotent).
  void UnsubscribeHead(SubscriptionId id);

  /// The ancestor of `entry` at `height` (O(log height) via skip
  /// pointers); nullptr when `height` exceeds the entry's height.
  const BlockEntry* GetAncestor(const BlockEntry* entry,
                                uint64_t height) const;

  /// True when `tx_id` is included on the branch from genesis to `tip`
  /// (inclusive). O(occurrences x log height) via the global tx index —
  /// the duplicate check of block assembly and validation.
  bool TxOnBranch(const BlockEntry& tip, const crypto::Hash256& tx_id) const;

  // ------------------------------------------------------ canonical queries

  /// True when `hash` lies on the canonical chain.
  bool IsCanonical(const crypto::Hash256& hash) const;

  /// Number of canonical blocks mined after `hash` ("buried under N
  /// blocks"); nullopt when the block is not canonical.
  std::optional<uint64_t> ConfirmationsOf(const crypto::Hash256& hash) const;

  /// The canonical block `depth` below the head (clamped at genesis): the
  /// paper's "stable block at depth d".
  const BlockEntry* StableBlock(uint32_t depth) const;

  /// Canonical headers strictly after `ancestor_hash`, oldest first —
  /// the raw material of Section 4.3 evidence.
  Result<std::vector<BlockHeader>> HeadersAfter(
      const crypto::Hash256& ancestor_hash) const;

  /// Where a transaction landed on the canonical chain (chain::TxLocation,
  /// re-exported under the historical nested name).
  using TxLocation = chain::TxLocation;
  std::optional<TxLocation> FindTx(const crypto::Hash256& tx_id) const;

  /// Newest canonical call of `function` on `contract_id` (optionally only
  /// successful ones). This is how participants observe on-chain events —
  /// e.g. a redeem call revealing the hashlock secret.
  std::optional<TxLocation> FindCall(const crypto::Hash256& contract_id,
                                     const std::string& function,
                                     bool require_success) const;

  /// Contract snapshot at the canonical head.
  Result<contracts::ContractPtr> ContractAtHead(
      const crypto::Hash256& id) const;

  const LedgerState& StateAtHead() const { return head_->state; }

  /// The synthetic genesis transaction (its outputs fund the allocations).
  const Transaction& genesis_tx() const { return genesis_->block.txs[0]; }

  // --------------------------------------------------------------- mining

  /// Builds a valid block on `parent_hash` from `candidates` (FIFO,
  /// capacity-capped, structurally-invalid and already-included ones
  /// skipped), mines its PoW, and returns it WITHOUT submitting. The
  /// candidate-selection loop is widened across the chain's execution
  /// worker pool when it pays (enough candidates, pool wider than one
  /// thread, AC3_EXEC_SERIAL unset); selected sets, receipts and the
  /// returned block are identical to the serial loop at any width — see
  /// AssembleBlockOn.
  Result<Block> AssembleBlock(const crypto::Hash256& parent_hash,
                              const std::vector<Transaction>& candidates,
                              const crypto::PublicKey& miner,
                              TimePoint now, Rng* rng) const;

  /// The allocation-light overload for the ingestion hot path: candidates
  /// by pointer (Mempool::CandidatePointersAt — rejected candidates are
  /// never copied), and optionally unmined — `mine = false` skips the
  /// nonce search, leaving header.nonce at zero, so a caller can batch
  /// the search across many miners' assembled headers (MineHeaderBatch)
  /// and submit only the contention winner.
  Result<Block> AssembleBlock(const crypto::Hash256& parent_hash,
                              std::span<const Transaction* const> candidates,
                              const crypto::PublicKey& miner, TimePoint now,
                              Rng* rng, bool mine = true) const;

  /// AssembleBlock with an explicit selection worker pool — the
  /// equivalence seam. `pool == nullptr` (or a single-threaded pool) runs
  /// the serial FIFO selection loop, kept as the always-available oracle
  /// (same discipline as MineHeaderScalar / ApplyBlockBody). A wider pool
  /// runs speculative candidate execution against the round-start
  /// snapshot with conflict-checked FIFO adoption (tx_conflict.h) and a
  /// serial re-run for every candidate the speculation cannot prove
  /// bit-identical — so selected sets, receipts and block bytes match the
  /// serial loop exactly, whatever the width.
  Result<Block> AssembleBlockOn(common::WorkerPool* pool,
                                const crypto::Hash256& parent_hash,
                                std::span<const Transaction* const> candidates,
                                const crypto::PublicKey& miner, TimePoint now,
                                Rng* rng, bool mine = true) const;

 private:
  /// Full validation of `block` against its parent entry: PoW, linkage,
  /// roots, capacity, branch-duplicate checks, then transaction execution
  /// (via ApplyBlockBodyParallel on `exec_pool`; pass nullptr to force the
  /// serial path, e.g. while the pool is busy validating sibling blocks)
  /// and declared-receipt equality.
  Status ValidateAgainstParent(const Block& block, const BlockEntry& parent,
                               std::vector<Receipt>* receipts,
                               LedgerState* post_state,
                               common::WorkerPool* exec_pool) const;

  /// The lazily-created pool backing intra-block parallel execution on the
  /// single-block SubmitBlock path. WorkerPool spawns no threads until the
  /// first wide ParallelFor, so chains that only ever see small blocks pay
  /// nothing.
  common::WorkerPool* ExecPool() const;

  /// Stores a block that already passed ValidateAgainstParent: builds the
  /// BlockEntry, indexes it, and applies the longest-chain rule (head
  /// listeners fire from here). The serial commit half of both SubmitBlock
  /// and SubmitBlocks.
  void CommitValidated(const Block& block, const crypto::Hash256& hash,
                       const BlockEntry* parent, std::vector<Receipt> receipts,
                       LedgerState post_state, TimePoint arrival_time);

  /// True when `entry` lies on the branch ending at `tip`.
  bool OnBranch(const BlockEntry& tip, const BlockEntry* entry) const;

  ChainParams params_;
  /// Entry store + tx/contract query indexes (sharded; see chain_index.h).
  ChainIndex index_;
  std::vector<std::pair<SubscriptionId, HeadListener>> head_listeners_;
  SubscriptionId next_subscription_id_ = 1;
  const BlockEntry* genesis_ = nullptr;
  const BlockEntry* head_ = nullptr;
  uint64_t next_arrival_seq_ = 0;
  /// All entries in arrival order (genesis first).
  std::vector<const BlockEntry*> arrival_order_;
  /// See ExecPool().
  mutable std::unique_ptr<common::WorkerPool> exec_pool_;
};

}  // namespace ac3::chain

#endif  // AC3_CHAIN_BLOCKCHAIN_H_
