// Mempool: pending transactions awaiting inclusion.
//
// End-users "multicast their transaction messages to mining nodes"
// (Section 2.1); the mempool models the union of miners' pending sets with
// per-transaction arrival times — a miner assembling at time t only sees
// transactions that arrived by t.
//
// Entries are kept sorted by (arrival, submission order) — production
// submissions arrive in nondecreasing time, so inserts are O(1) appends —
// which lets candidate selection stop at the first not-yet-visible entry
// instead of scanning and re-sorting the whole pool. Ids are hash-indexed
// for O(1) duplicate checks and one-pass pruning.

#ifndef AC3_CHAIN_MEMPOOL_H_
#define AC3_CHAIN_MEMPOOL_H_

#include <functional>
#include <set>
#include <span>
#include <unordered_set>
#include <vector>

#include "src/chain/transaction.h"
#include "src/common/sim_time.h"
#include "src/common/status.h"

namespace ac3::chain {

class Mempool {
 public:
  /// Branch-membership oracle: true when a transaction id is already
  /// included on the assembling branch (see Blockchain::TxOnBranch).
  using TxFilter = std::function<bool(const crypto::Hash256&)>;

  /// Queues `tx`; duplicates by id are rejected.
  Status Submit(const Transaction& tx, TimePoint arrival);

  /// Outcome of one SubmitBatch call.
  struct BatchResult {
    size_t accepted = 0;  ///< Transactions queued.
    /// One status per input transaction, in input order — exactly what a
    /// serial Submit loop over the same sequence would have returned
    /// (in-batch duplicates reject like cross-batch ones).
    std::vector<Status> statuses;
  };

  /// Queues a batch sharing one arrival time — the open-world ingestion
  /// path (a node draining its network queue once per tick). Semantically
  /// identical to calling Submit(tx, arrival) on each element in order,
  /// but the id index and entry vector grow once for the whole batch and
  /// the duplicate check is a single pass.
  BatchResult SubmitBatch(std::span<const Transaction> txs, TimePoint arrival);

  /// Transactions visible at `now` for which `already_included` returns
  /// false, in arrival order.
  std::vector<Transaction> CandidatesAt(TimePoint now,
                                        const TxFilter& already_included) const;

  /// Convenience overload for explicit id sets (tests, replay tools).
  std::vector<Transaction> CandidatesAt(
      TimePoint now, const std::set<crypto::Hash256>& already_included) const;

  /// CandidatesAt without copying any Transaction: arrival-ordered
  /// pointers into the pool, for the assembly hot path (a miner inspects
  /// hundreds of candidates per block and copies none of the rejects).
  /// Pointers are invalidated by the next Submit/SubmitBatch/Prune.
  std::vector<const Transaction*> CandidatePointersAt(
      TimePoint now, const TxFilter& already_included) const;

  /// Drops entries whose ids appear in `included` (canonical cleanup).
  /// One pass over the pool; ids are unindexed as their entries drop.
  void Prune(const std::set<crypto::Hash256>& included);

  /// Prune for an arbitrary id list (unsorted, duplicates allowed): no
  /// ordered-set build at the call site. Ids are unindexed first (O(1)
  /// hash erases); the entry vector is compacted only when something was
  /// actually dropped. Same post-state as the set overload.
  void Prune(std::span<const crypto::Hash256> included);

  size_t size() const { return entries_.size(); }
  bool Contains(const crypto::Hash256& tx_id) const {
    return ids_.count(tx_id) > 0;
  }

 private:
  struct Entry {
    TimePoint arrival;
    Transaction tx;
    crypto::Hash256 id;
  };
  /// Sorted by arrival; equal arrivals keep submission order.
  std::vector<Entry> entries_;
  std::unordered_set<crypto::Hash256> ids_;
};

}  // namespace ac3::chain

#endif  // AC3_CHAIN_MEMPOOL_H_
