// Mempool: pending transactions awaiting inclusion.
//
// End-users "multicast their transaction messages to mining nodes"
// (Section 2.1); the mempool models the union of miners' pending sets with
// per-transaction arrival times — a miner assembling at time t only sees
// transactions that arrived by t.

#ifndef AC3_CHAIN_MEMPOOL_H_
#define AC3_CHAIN_MEMPOOL_H_

#include <set>
#include <vector>

#include "src/chain/transaction.h"
#include "src/common/sim_time.h"
#include "src/common/status.h"

namespace ac3::chain {

class Mempool {
 public:
  /// Queues `tx`; duplicates by id are rejected.
  Status Submit(const Transaction& tx, TimePoint arrival);

  /// Transactions visible at `now` and not in `already_included`
  /// (the assembling branch's cumulative tx set), in arrival order.
  std::vector<Transaction> CandidatesAt(
      TimePoint now, const std::set<crypto::Hash256>& already_included) const;

  /// Drops entries whose ids appear in `included` (canonical cleanup).
  void Prune(const std::set<crypto::Hash256>& included);

  size_t size() const { return entries_.size(); }
  bool Contains(const crypto::Hash256& tx_id) const {
    return ids_.count(tx_id) > 0;
  }

 private:
  struct Entry {
    TimePoint arrival;
    Transaction tx;
    crypto::Hash256 id;
  };
  std::vector<Entry> entries_;
  std::set<crypto::Hash256> ids_;
};

}  // namespace ac3::chain

#endif  // AC3_CHAIN_MEMPOOL_H_
