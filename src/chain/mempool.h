// Mempool: pending transactions awaiting inclusion.
//
// End-users "multicast their transaction messages to mining nodes"
// (Section 2.1); the mempool models the union of miners' pending sets with
// per-transaction arrival times — a miner assembling at time t only sees
// transactions that arrived by t.
//
// Entries are kept sorted by (arrival, submission order) — production
// submissions arrive in nondecreasing time, so inserts are O(1) appends —
// which lets candidate selection stop at the first not-yet-visible entry
// instead of scanning and re-sorting the whole pool. Ids are hash-indexed
// for O(1) duplicate checks and one-pass pruning.

#ifndef AC3_CHAIN_MEMPOOL_H_
#define AC3_CHAIN_MEMPOOL_H_

#include <functional>
#include <set>
#include <unordered_set>
#include <vector>

#include "src/chain/transaction.h"
#include "src/common/sim_time.h"
#include "src/common/status.h"

namespace ac3::chain {

class Mempool {
 public:
  /// Branch-membership oracle: true when a transaction id is already
  /// included on the assembling branch (see Blockchain::TxOnBranch).
  using TxFilter = std::function<bool(const crypto::Hash256&)>;

  /// Queues `tx`; duplicates by id are rejected.
  Status Submit(const Transaction& tx, TimePoint arrival);

  /// Transactions visible at `now` for which `already_included` returns
  /// false, in arrival order.
  std::vector<Transaction> CandidatesAt(TimePoint now,
                                        const TxFilter& already_included) const;

  /// Convenience overload for explicit id sets (tests, replay tools).
  std::vector<Transaction> CandidatesAt(
      TimePoint now, const std::set<crypto::Hash256>& already_included) const;

  /// Drops entries whose ids appear in `included` (canonical cleanup).
  /// One pass over the pool; ids are unindexed as their entries drop.
  void Prune(const std::set<crypto::Hash256>& included);

  size_t size() const { return entries_.size(); }
  bool Contains(const crypto::Hash256& tx_id) const {
    return ids_.count(tx_id) > 0;
  }

 private:
  struct Entry {
    TimePoint arrival;
    Transaction tx;
    crypto::Hash256 id;
  };
  /// Sorted by arrival; equal arrivals keep submission order.
  std::vector<Entry> entries_;
  std::unordered_set<crypto::Hash256> ids_;
};

}  // namespace ac3::chain

#endif  // AC3_CHAIN_MEMPOOL_H_
