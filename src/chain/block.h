// Blocks and block headers.
//
// The header commits to the transaction list and the receipt list via two
// Merkle roots and carries the proof-of-work fields. Header hashes use
// double SHA-256 (Bitcoin convention). Headers are what light-client
// evidence ships across chains (Section 4.3), so they encode/decode
// canonically.

#ifndef AC3_CHAIN_BLOCK_H_
#define AC3_CHAIN_BLOCK_H_

#include <vector>

#include "src/chain/params.h"
#include "src/chain/receipt.h"
#include "src/chain/transaction.h"
#include "src/common/sim_time.h"
#include "src/crypto/hash256.h"

namespace ac3::chain {

struct BlockHeader {
  ChainId chain_id = 0;
  uint64_t height = 0;
  crypto::Hash256 prev_hash;
  crypto::Hash256 tx_root;
  crypto::Hash256 receipt_root;
  /// Simulated mining timestamp.
  TimePoint time = 0;
  /// Required leading zero bits of Hash() (copied from chain params).
  uint32_t difficulty_bits = 0;
  uint64_t nonce = 0;

  /// Canonical encoding is fixed-width: 4 + 8 + 3*32 + 8 + 4 + 8 bytes,
  /// with the nonce as the final 8 bytes (what HeaderHasher patches).
  static constexpr size_t kEncodedSize = 128;

  Bytes Encode() const;
  /// Same canonical bytes as Encode(), written into a caller buffer — the
  /// allocation-free path used by hashing and proof-of-work.
  void EncodeTo(uint8_t (&out)[kEncodedSize]) const;
  static Result<BlockHeader> Decode(ByteReader* reader);

  /// Double SHA-256 of the encoding — the block id and the PoW subject.
  crypto::Hash256 Hash() const;

  auto operator<=>(const BlockHeader&) const = default;
};

struct Block {
  BlockHeader header;
  std::vector<Transaction> txs;
  std::vector<Receipt> receipts;

  /// Merkle roots over the current txs / receipts lists.
  crypto::Hash256 ComputeTxRoot() const;
  crypto::Hash256 ComputeReceiptRoot() const;

  /// Leaf hash vectors (exposed so evidence builders can produce proofs).
  std::vector<crypto::Hash256> TxLeaves() const;
  std::vector<crypto::Hash256> ReceiptLeaves() const;
};

}  // namespace ac3::chain

#endif  // AC3_CHAIN_BLOCK_H_
