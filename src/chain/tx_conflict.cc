#include "src/chain/tx_conflict.h"

#include <algorithm>
#include <unordered_map>

namespace ac3::chain {

namespace {

struct OutPointHasher {
  size_t operator()(const OutPoint& op) const {
    return static_cast<size_t>(
        op.tx_id.Prefix64() ^
        (0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(op.index) + 1)));
  }
};

}  // namespace

TxRwSet ExtractRwSet(const Transaction& tx) {
  TxRwSet set;
  set.id = tx.Id();
  set.inputs = &tx.inputs;
  switch (tx.type) {
    case TxType::kCoinbase:
    case TxType::kTransfer:
      break;
    case TxType::kDeploy:
      set.contract_key = set.id;
      set.touches_contract = true;
      break;
    case TxType::kCall:
      set.contract_key = tx.contract_id;
      set.touches_contract = true;
      break;
  }
  return set;
}

bool RwSetsConflict(const TxRwSet& a, const TxRwSet& b) {
  for (const OutPoint& in : *a.inputs) {
    if (in.tx_id == b.id) return true;  // a spends an output b creates.
    for (const OutPoint& other : *b.inputs) {
      if (in == other) return true;  // Shared consumed outpoint.
    }
  }
  for (const OutPoint& in : *b.inputs) {
    if (in.tx_id == a.id) return true;  // b spends an output a creates.
  }
  if (a.touches_contract && b.touches_contract &&
      a.contract_key == b.contract_key) {
    return true;  // Same contract snapshot.
  }
  return false;
}

std::vector<std::vector<size_t>> BuildExecutionWaves(
    const std::vector<Transaction>& txs) {
  const size_t n = txs.size();
  if (n <= 1) return {};

  std::vector<TxRwSet> sets(n);
  std::unordered_map<crypto::Hash256, size_t> id_to_index;
  for (size_t i = 1; i < n; ++i) {
    sets[i] = ExtractRwSet(txs[i]);
    // First occurrence wins on (degenerate) duplicate ids; duplicates
    // share inputs and conflict through them anyway.
    id_to_index.emplace(sets[i].id, i);
  }

  // Last block transaction that touched each key so far; a toucher at
  // index k forces any later toucher into wave > wave[k].
  std::unordered_map<OutPoint, size_t, OutPointHasher> last_utxo_touch;
  std::unordered_map<crypto::Hash256, size_t> last_contract_touch;
  // Conflicts discovered against a *later* index (tx i naming tx k > i —
  // spending its future output or calling its future deploy): recorded
  // here and folded in when k is scheduled, preserving block order.
  std::vector<std::vector<size_t>> earlier_refs(n);

  std::vector<size_t> wave(n, 0);
  size_t wave_count = 0;
  for (size_t i = 1; i < n; ++i) {
    size_t w = 0;
    const auto after = [&](size_t j) { w = std::max(w, wave[j] + 1); };
    for (size_t j : earlier_refs[i]) after(j);
    const auto cross_ref = [&](const crypto::Hash256& named_id) {
      const auto ref = id_to_index.find(named_id);
      if (ref == id_to_index.end() || ref->second == i) return;
      if (ref->second < i) {
        after(ref->second);
      } else {
        earlier_refs[ref->second].push_back(i);
      }
    };
    for (const OutPoint& in : *sets[i].inputs) {
      const auto touched = last_utxo_touch.find(in);
      if (touched != last_utxo_touch.end()) after(touched->second);
      cross_ref(in.tx_id);
    }
    if (sets[i].touches_contract) {
      const auto touched = last_contract_touch.find(sets[i].contract_key);
      if (touched != last_contract_touch.end()) after(touched->second);
      cross_ref(sets[i].contract_key);
    }
    wave[i] = w;
    wave_count = std::max(wave_count, w + 1);
    for (const OutPoint& in : *sets[i].inputs) last_utxo_touch[in] = i;
    if (sets[i].touches_contract) {
      last_contract_touch[sets[i].contract_key] = i;
    }
  }

  std::vector<std::vector<size_t>> waves(wave_count);
  for (size_t i = 1; i < n; ++i) waves[wave[i]].push_back(i);
  return waves;
}

}  // namespace ac3::chain
