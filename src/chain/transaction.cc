#include "src/chain/transaction.h"

namespace ac3::chain {

const char* TxTypeName(TxType type) {
  switch (type) {
    case TxType::kCoinbase:
      return "coinbase";
    case TxType::kTransfer:
      return "transfer";
    case TxType::kDeploy:
      return "deploy";
    case TxType::kCall:
      return "call";
  }
  return "?";
}

namespace {

void EncodeCore(const Transaction& tx, ByteWriter* w) {
  w->PutU8(static_cast<uint8_t>(tx.type));
  w->PutU32(tx.chain_id);
  w->PutU32(static_cast<uint32_t>(tx.inputs.size()));
  for (const OutPoint& in : tx.inputs) {
    w->PutRaw(in.tx_id.bytes(), crypto::Hash256::kSize);
    w->PutU32(in.index);
  }
  w->PutU32(static_cast<uint32_t>(tx.outputs.size()));
  for (const TxOutput& out : tx.outputs) {
    w->PutU64(out.value);
    w->PutRaw(out.owner.Encode());
  }
  w->PutU64(tx.fee);
  w->PutRaw(tx.signer.Encode());
  w->PutU64(tx.nonce);
  w->PutString(tx.contract_kind);
  w->PutRaw(tx.contract_id.bytes(), crypto::Hash256::kSize);
  w->PutString(tx.function);
  w->PutBytes(tx.payload);
  w->PutU64(tx.contract_value);
}

Result<crypto::Hash256> ReadHash(ByteReader* r) {
  AC3_ASSIGN_OR_RETURN(Bytes raw, r->GetRaw(crypto::Hash256::kSize));
  std::array<uint8_t, crypto::Hash256::kSize> arr{};
  std::copy(raw.begin(), raw.end(), arr.begin());
  return crypto::Hash256(arr);
}

}  // namespace

Bytes Transaction::SigningPayload() const {
  ByteWriter w;
  w.PutString("ac3/tx");
  EncodeCore(*this, &w);
  return w.Take();
}

Bytes Transaction::Encode() const {
  ByteWriter w;
  EncodeCore(*this, &w);
  w.PutRaw(signature.Encode());
  return w.Take();
}

Result<Transaction> Transaction::Decode(const Bytes& encoded) {
  ByteReader r(encoded);
  Transaction tx;
  AC3_ASSIGN_OR_RETURN(uint8_t type, r.GetU8());
  if (type < 1 || type > 4) {
    return Status::InvalidArgument("unknown transaction type");
  }
  tx.type = static_cast<TxType>(type);
  AC3_ASSIGN_OR_RETURN(tx.chain_id, r.GetU32());
  AC3_ASSIGN_OR_RETURN(uint32_t n_in, r.GetU32());
  for (uint32_t i = 0; i < n_in; ++i) {
    OutPoint in;
    AC3_ASSIGN_OR_RETURN(in.tx_id, ReadHash(&r));
    AC3_ASSIGN_OR_RETURN(in.index, r.GetU32());
    tx.inputs.push_back(in);
  }
  AC3_ASSIGN_OR_RETURN(uint32_t n_out, r.GetU32());
  for (uint32_t i = 0; i < n_out; ++i) {
    TxOutput out;
    AC3_ASSIGN_OR_RETURN(out.value, r.GetU64());
    AC3_ASSIGN_OR_RETURN(out.owner, crypto::PublicKey::Decode(&r));
    tx.outputs.push_back(out);
  }
  AC3_ASSIGN_OR_RETURN(tx.fee, r.GetU64());
  AC3_ASSIGN_OR_RETURN(tx.signer, crypto::PublicKey::Decode(&r));
  AC3_ASSIGN_OR_RETURN(tx.nonce, r.GetU64());
  AC3_ASSIGN_OR_RETURN(tx.contract_kind, r.GetString());
  AC3_ASSIGN_OR_RETURN(tx.contract_id, ReadHash(&r));
  AC3_ASSIGN_OR_RETURN(tx.function, r.GetString());
  AC3_ASSIGN_OR_RETURN(tx.payload, r.GetBytes());
  AC3_ASSIGN_OR_RETURN(tx.contract_value, r.GetU64());
  AC3_ASSIGN_OR_RETURN(tx.signature, crypto::Signature::Decode(&r));
  return tx;
}

crypto::Hash256 Transaction::Id() const { return crypto::Hash256::Of(Encode()); }

void Transaction::SignWith(const crypto::KeyPair& key) {
  signer = key.public_key();
  signature = key.Sign(SigningPayload());
}

bool Transaction::VerifySignature() const {
  if (type == TxType::kCoinbase) return true;
  return crypto::Verify(signer, SigningPayload(), signature);
}

Amount Transaction::TotalOutput() const {
  Amount total = 0;
  for (const TxOutput& out : outputs) total += out.value;
  return total;
}

}  // namespace ac3::chain
