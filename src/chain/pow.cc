#include "src/chain/pow.h"

#include <cassert>
#include <cmath>

namespace ac3::chain {

bool HashMeetsDifficulty(const crypto::Hash256& hash,
                         uint32_t difficulty_bits) {
  assert(difficulty_bits < 64);
  if (difficulty_bits == 0) return true;
  return (hash.Prefix64() >> (64 - difficulty_bits)) == 0;
}

bool CheckProofOfWork(const BlockHeader& header) {
  return HashMeetsDifficulty(header.Hash(), header.difficulty_bits);
}

uint64_t MineHeader(BlockHeader* header, Rng* rng) {
  header->nonce = rng->NextU64();
  uint64_t evaluations = 0;
  for (;;) {
    ++evaluations;
    if (CheckProofOfWork(*header)) return evaluations;
    ++header->nonce;
  }
}

double WorkForDifficulty(uint32_t difficulty_bits) {
  return std::pow(2.0, static_cast<double>(difficulty_bits));
}

}  // namespace ac3::chain
