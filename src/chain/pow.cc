#include "src/chain/pow.h"

#include <cassert>
#include <cmath>

#include "src/crypto/header_hasher.h"

namespace ac3::chain {

bool HashMeetsDifficulty(const crypto::Hash256& hash,
                         uint32_t difficulty_bits) {
  assert(difficulty_bits < 64);
  if (difficulty_bits == 0) return true;
  return (hash.Prefix64() >> (64 - difficulty_bits)) == 0;
}

bool CheckProofOfWork(const BlockHeader& header) {
  return HashMeetsDifficulty(header.Hash(), header.difficulty_bits);
}

uint64_t MineHeader(BlockHeader* header, Rng* rng) {
  // Encode once; the nonce search only re-hashes from the cached SHA-256
  // midstate of the fixed prefix, patching the trailing nonce in place.
  uint8_t preimage[BlockHeader::kEncodedSize];
  header->EncodeTo(preimage);
  crypto::HeaderHasher hasher(preimage);
  uint64_t nonce = rng->NextU64();
  uint64_t evaluations = 0;
  for (;;) {
    ++evaluations;
    if (HashMeetsDifficulty(hasher.HashWithNonce(nonce),
                            header->difficulty_bits)) {
      header->nonce = nonce;
      return evaluations;
    }
    ++nonce;
  }
}

double WorkForDifficulty(uint32_t difficulty_bits) {
  return std::pow(2.0, static_cast<double>(difficulty_bits));
}

}  // namespace ac3::chain
