#include "src/chain/pow.h"

#include <cassert>
#include <cmath>

#include "src/crypto/header_hasher.h"

namespace ac3::chain {

bool HashMeetsDifficulty(const crypto::Hash256& hash,
                         uint32_t difficulty_bits) {
  assert(difficulty_bits < 64);
  if (difficulty_bits == 0) return true;
  return (hash.Prefix64() >> (64 - difficulty_bits)) == 0;
}

bool CheckProofOfWork(const BlockHeader& header) {
  return HashMeetsDifficulty(header.Hash(), header.difficulty_bits);
}

uint64_t MineHeader(BlockHeader* header, Rng* rng) {
  // Encode once; the nonce search only re-hashes from the cached SHA-256
  // midstate of the fixed prefix, patching the trailing nonce in place.
  // The loop width follows the active SHA-256 dispatch level (2 lanes on
  // the scalar/SHA-NI rungs, 8 on AVX2); lanes are checked in ascending
  // nonce order, so whatever the width, the winning nonce and the
  // returned count — nonces visited up to and including the winner —
  // match MineHeaderScalar exactly (the later-lane hashes of a win are
  // the only extra work, amortized over ~2^difficulty attempts).
  uint8_t preimage[BlockHeader::kEncodedSize];
  header->EncodeTo(preimage);
  crypto::HeaderHasher hasher(preimage);
  uint64_t nonce = rng->NextU64();
  uint64_t evaluations = 0;
  const size_t lanes = crypto::Sha256::PreferredMiningLanes();
  if (lanes > 2) {
    uint64_t nonces[crypto::Sha256::kMaxLanes];
    crypto::Hash256 hashes[crypto::Sha256::kMaxLanes];
    for (;;) {
      for (size_t lane = 0; lane < lanes; ++lane) {
        nonces[lane] = nonce + lane;
      }
      hasher.HashBatchWithNonces(nonces, lanes, hashes);
      for (size_t lane = 0; lane < lanes; ++lane) {
        if (HashMeetsDifficulty(hashes[lane], header->difficulty_bits)) {
          header->nonce = nonces[lane];
          return evaluations + lane + 1;
        }
      }
      evaluations += lanes;
      nonce += lanes;
    }
  }
  for (;;) {
    crypto::Hash256 hash_a;
    crypto::Hash256 hash_b;
    hasher.HashPairWithNonces(nonce, nonce + 1, &hash_a, &hash_b);
    if (HashMeetsDifficulty(hash_a, header->difficulty_bits)) {
      header->nonce = nonce;
      return evaluations + 1;
    }
    if (HashMeetsDifficulty(hash_b, header->difficulty_bits)) {
      header->nonce = nonce + 1;
      return evaluations + 2;
    }
    evaluations += 2;
    nonce += 2;
  }
}

uint64_t MineHeaderScalar(BlockHeader* header, Rng* rng) {
  uint8_t preimage[BlockHeader::kEncodedSize];
  header->EncodeTo(preimage);
  crypto::HeaderHasher hasher(preimage);
  uint64_t nonce = rng->NextU64();
  uint64_t evaluations = 0;
  for (;;) {
    ++evaluations;
    if (HashMeetsDifficulty(hasher.HashWithNonce(nonce),
                            header->difficulty_bits)) {
      header->nonce = nonce;
      return evaluations;
    }
    ++nonce;
  }
}

double WorkForDifficulty(uint32_t difficulty_bits) {
  return std::pow(2.0, static_cast<double>(difficulty_bits));
}

}  // namespace ac3::chain
