#include "src/chain/pow.h"

#include <cassert>
#include <cmath>

#include "src/crypto/header_hasher.h"

namespace ac3::chain {

bool HashMeetsDifficulty(const crypto::Hash256& hash,
                         uint32_t difficulty_bits) {
  assert(difficulty_bits < 64);
  if (difficulty_bits == 0) return true;
  return (hash.Prefix64() >> (64 - difficulty_bits)) == 0;
}

bool CheckProofOfWork(const BlockHeader& header) {
  return HashMeetsDifficulty(header.Hash(), header.difficulty_bits);
}

uint64_t MineHeader(BlockHeader* header, Rng* rng) {
  // Encode once; the nonce search only re-hashes from the cached SHA-256
  // midstate of the fixed prefix, patching the trailing nonce in place.
  // Two nonces are evaluated per iteration through the round-interleaved
  // pair hasher; checking lane A before lane B preserves the scalar
  // ascending-order semantics, so the winning nonce and the returned count
  // match MineHeaderScalar exactly (the lane-B hash of a lane-A win is the
  // only extra work, amortized over ~2^difficulty attempts).
  uint8_t preimage[BlockHeader::kEncodedSize];
  header->EncodeTo(preimage);
  crypto::HeaderHasher hasher(preimage);
  uint64_t nonce = rng->NextU64();
  uint64_t evaluations = 0;
  for (;;) {
    crypto::Hash256 hash_a;
    crypto::Hash256 hash_b;
    hasher.HashPairWithNonces(nonce, nonce + 1, &hash_a, &hash_b);
    if (HashMeetsDifficulty(hash_a, header->difficulty_bits)) {
      header->nonce = nonce;
      return evaluations + 1;
    }
    if (HashMeetsDifficulty(hash_b, header->difficulty_bits)) {
      header->nonce = nonce + 1;
      return evaluations + 2;
    }
    evaluations += 2;
    nonce += 2;
  }
}

uint64_t MineHeaderScalar(BlockHeader* header, Rng* rng) {
  uint8_t preimage[BlockHeader::kEncodedSize];
  header->EncodeTo(preimage);
  crypto::HeaderHasher hasher(preimage);
  uint64_t nonce = rng->NextU64();
  uint64_t evaluations = 0;
  for (;;) {
    ++evaluations;
    if (HashMeetsDifficulty(hasher.HashWithNonce(nonce),
                            header->difficulty_bits)) {
      header->nonce = nonce;
      return evaluations;
    }
    ++nonce;
  }
}

double WorkForDifficulty(uint32_t difficulty_bits) {
  return std::pow(2.0, static_cast<double>(difficulty_bits));
}

}  // namespace ac3::chain
