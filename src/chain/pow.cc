#include "src/chain/pow.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/crypto/header_hasher.h"

namespace ac3::chain {

bool HashMeetsDifficulty(const crypto::Hash256& hash,
                         uint32_t difficulty_bits) {
  assert(difficulty_bits < 64);
  if (difficulty_bits == 0) return true;
  return (hash.Prefix64() >> (64 - difficulty_bits)) == 0;
}

bool CheckProofOfWork(const BlockHeader& header) {
  return HashMeetsDifficulty(header.Hash(), header.difficulty_bits);
}

uint64_t MineHeader(BlockHeader* header, Rng* rng) {
  // Encode once; the nonce search only re-hashes from the cached SHA-256
  // midstate of the fixed prefix, patching the trailing nonce in place.
  // The loop width follows the active SHA-256 dispatch level (2 lanes on
  // the scalar/SHA-NI rungs, 8 on AVX2); lanes are checked in ascending
  // nonce order, so whatever the width, the winning nonce and the
  // returned count — nonces visited up to and including the winner —
  // match MineHeaderScalar exactly (the later-lane hashes of a win are
  // the only extra work, amortized over ~2^difficulty attempts).
  uint8_t preimage[BlockHeader::kEncodedSize];
  header->EncodeTo(preimage);
  crypto::HeaderHasher hasher(preimage);
  uint64_t nonce = rng->NextU64();
  uint64_t evaluations = 0;
  const size_t lanes = crypto::Sha256::PreferredMiningLanes();
  if (lanes > 2) {
    uint64_t nonces[crypto::Sha256::kMaxLanes];
    crypto::Hash256 hashes[crypto::Sha256::kMaxLanes];
    for (;;) {
      for (size_t lane = 0; lane < lanes; ++lane) {
        nonces[lane] = nonce + lane;
      }
      hasher.HashBatchWithNonces(nonces, lanes, hashes);
      for (size_t lane = 0; lane < lanes; ++lane) {
        if (HashMeetsDifficulty(hashes[lane], header->difficulty_bits)) {
          header->nonce = nonces[lane];
          return evaluations + lane + 1;
        }
      }
      evaluations += lanes;
      nonce += lanes;
    }
  }
  for (;;) {
    crypto::Hash256 hash_a;
    crypto::Hash256 hash_b;
    hasher.HashPairWithNonces(nonce, nonce + 1, &hash_a, &hash_b);
    if (HashMeetsDifficulty(hash_a, header->difficulty_bits)) {
      header->nonce = nonce;
      return evaluations + 1;
    }
    if (HashMeetsDifficulty(hash_b, header->difficulty_bits)) {
      header->nonce = nonce + 1;
      return evaluations + 2;
    }
    evaluations += 2;
    nonce += 2;
  }
}

std::vector<uint64_t> MineHeaderBatch(std::span<BlockHeader* const> headers,
                                      Rng* rng) {
  const size_t n = headers.size();
  std::vector<uint64_t> evals(n, 0);
  if (n == 0) return evals;

  struct Miner {
    size_t index;  ///< Position in `headers` / `evals`.
    crypto::HeaderHasher hasher;
    uint64_t next_nonce;
    bool done = false;
  };
  std::vector<Miner> active;
  active.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    uint8_t preimage[BlockHeader::kEncodedSize];
    headers[i]->EncodeTo(preimage);
    // One NextU64 per header, in index order — exactly the draw sequence
    // of sequential MineHeader calls on a shared rng, which is what keeps
    // the committed eval-count goldens identical between the two paths.
    active.push_back(Miner{i, crypto::HeaderHasher(preimage), rng->NextU64()});
  }

  const size_t lanes = crypto::Sha256::PreferredMiningLanes();
  crypto::HeaderHasher::Lane plan[crypto::Sha256::kMaxLanes];
  size_t plan_miner[crypto::Sha256::kMaxLanes];
  crypto::Hash256 hashes[crypto::Sha256::kMaxLanes];

  while (!active.empty()) {
    // One pass over the unsolved miners in chunks of at most `lanes`
    // miners. Within a chunk, all `lanes` lanes are filled — split as
    // evenly as possible, earlier miners taking the remainder — and each
    // miner's lanes carry consecutive ascending nonces from its cursor,
    // so every miner's visit order is the same ascending sequence the
    // per-miner loop walks; only the chunking (pure wall-clock shape)
    // differs, and eval counts count visited nonces, not iterations.
    for (size_t base = 0; base < active.size(); ) {
      const size_t chunk = std::min(active.size() - base, lanes);
      const size_t per = lanes / chunk;
      const size_t extra = lanes % chunk;
      size_t used = 0;
      for (size_t m = 0; m < chunk; ++m) {
        Miner& miner = active[base + m];
        const size_t count = per + (m < extra ? 1 : 0);
        for (size_t k = 0; k < count; ++k) {
          plan[used] = crypto::HeaderHasher::Lane{&miner.hasher,
                                                  miner.next_nonce + k};
          plan_miner[used] = base + m;
          ++used;
        }
      }
      crypto::HeaderHasher::HashLanesWithNonces(plan, used, hashes);
      // Check each miner's lanes in ascending nonce order (the plan is
      // grouped per miner, ascending): the first meeting hash is that
      // miner's winning nonce, with later lanes of a winner the only
      // wasted work — same discipline as MineHeader's wide loop.
      for (size_t i = 0; i < used; ) {
        Miner& miner = active[plan_miner[i]];
        size_t count = 1;
        while (i + count < used && plan_miner[i + count] == plan_miner[i]) {
          ++count;
        }
        const uint32_t bits = headers[miner.index]->difficulty_bits;
        for (size_t k = 0; k < count; ++k) {
          if (HashMeetsDifficulty(hashes[i + k], bits)) {
            headers[miner.index]->nonce = plan[i + k].nonce;
            evals[miner.index] += k + 1;
            miner.done = true;
            break;
          }
        }
        if (!miner.done) {
          evals[miner.index] += count;
          miner.next_nonce += count;
        }
        i += count;
      }
      base += chunk;
    }
    active.erase(std::remove_if(active.begin(), active.end(),
                                [](const Miner& m) { return m.done; }),
                 active.end());
  }
  return evals;
}

uint64_t MineHeaderScalar(BlockHeader* header, Rng* rng) {
  uint8_t preimage[BlockHeader::kEncodedSize];
  header->EncodeTo(preimage);
  crypto::HeaderHasher hasher(preimage);
  uint64_t nonce = rng->NextU64();
  uint64_t evaluations = 0;
  for (;;) {
    ++evaluations;
    if (HashMeetsDifficulty(hasher.HashWithNonce(nonce),
                            header->difficulty_bits)) {
      header->nonce = nonce;
      return evaluations;
    }
    ++nonce;
  }
}

double WorkForDifficulty(uint32_t difficulty_bits) {
  return std::pow(2.0, static_cast<double>(difficulty_bits));
}

}  // namespace ac3::chain
