#include "src/chain/mining.h"

#include <cassert>
#include <span>

#include "src/chain/pow.h"
#include "src/common/logging.h"

namespace ac3::chain {

MiningNetwork::MiningNetwork(sim::Simulation* sim, Blockchain* chain,
                             Mempool* mempool, MiningConfig config)
    : sim_(sim),
      chain_(chain),
      mempool_(mempool),
      config_(config),
      rng_(sim->rng()->Fork()) {
  assert(config_.miner_count > 0);
  for (int i = 0; i < config_.miner_count; ++i) {
    miner_keys_.push_back(crypto::KeyPair::Generate(&rng_));
  }
}

void MiningNetwork::Start() {
  if (running_) return;
  running_ = true;
  ScheduleNext();
}

void MiningNetwork::Stop() {
  running_ = false;
  pending_.Cancel();
}

void MiningNetwork::ScheduleNext() {
  const double mean =
      static_cast<double>(chain_->params().block_interval);
  Duration wait =
      static_cast<Duration>(rng_.NextExponential(mean)) + 1;
  pending_ = sim_->After(wait, [this]() { ProduceBlock(); });
}

Duration MiningNetwork::GossipDelay(const crypto::Hash256& block_hash,
                                    int miner) const {
  auto producer_it = producer_.find(block_hash);
  if (producer_it != producer_.end() && producer_it->second == miner) {
    return 0;  // Producers see their own block instantly.
  }
  if (config_.max_propagation_delay <= 0) return 0;
  // Deterministic per-(block, miner) delay so replays are reproducible.
  uint64_t state = block_hash.Prefix64() ^
                   (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(miner + 1));
  uint64_t draw = SplitMix64(&state);
  return static_cast<Duration>(
      draw % (static_cast<uint64_t>(config_.max_propagation_delay) + 1));
}

const BlockEntry* MiningNetwork::VisibleHeadScan(int miner,
                                                 TimePoint now) const {
  const BlockEntry* best = chain_->genesis();
  chain_->ForEachEntry([&](const crypto::Hash256& hash,
                           const BlockEntry& entry) {
    if (entry.arrival_time + GossipDelay(hash, miner) > now) return;
    if (entry.total_work > best->total_work ||
        (entry.total_work == best->total_work &&
         entry.arrival_seq < best->arrival_seq)) {
      best = &entry;
    }
  });
  return best;
}

const BlockEntry* MiningNetwork::VisibleHead(int miner, TimePoint now) const {
  if (miner < 0 || miner >= config_.miner_count) {
    // Stay total over miner ids, like the scan (delays are defined for any
    // id); only configured miners get incremental trackers.
    return VisibleHeadScan(miner, now);
  }
  if (views_.empty()) views_.resize(static_cast<size_t>(config_.miner_count));
  MinerView& view = views_[static_cast<size_t>(miner)];
  if (now < view.last_now) return VisibleHeadScan(miner, now);
  view.last_now = now;
  if (view.best == nullptr) view.best = chain_->genesis();

  // The fold is a max over (total_work, -arrival_seq); visibility is
  // monotone in `now`, so folding each block exactly once as it becomes
  // visible reproduces the full scan's answer.
  auto consider = [&](const BlockEntry* entry) {
    if (entry->total_work > view.best->total_work ||
        (entry->total_work == view.best->total_work &&
         entry->arrival_seq < view.best->arrival_seq)) {
      view.best = entry;
    }
  };

  const std::vector<const BlockEntry*>& feed = chain_->arrival_order();
  for (; view.cursor < feed.size(); ++view.cursor) {
    const BlockEntry* entry = feed[view.cursor];
    const TimePoint visible_at =
        entry->arrival_time + GossipDelay(entry->hash, miner);
    if (visible_at <= now) {
      consider(entry);
    } else {
      view.pending.push(MinerView::Pending{visible_at, entry});
    }
  }
  while (!view.pending.empty() && view.pending.top().visible_at <= now) {
    consider(view.pending.top().entry);
    view.pending.pop();
  }
  return view.best;
}

void MiningNetwork::ProduceBlock() {
  if (!running_) return;
  const TimePoint now = sim_->Now();
  const int miner = static_cast<int>(
      rng_.NextBelow(static_cast<uint64_t>(config_.miner_count)));
  const BlockEntry* parent = VisibleHead(miner, now);

  // No duplicate filter here: AssembleBlock's selection loop already skips
  // on-branch transactions (without consuming block capacity), so filtering
  // in CandidatesAt would just walk the tx index a second time per block.
  // Pointer candidates: rejected entries are never copied out of the pool
  // (the pool is not mutated between here and assembly).
  std::vector<const Transaction*> candidates =
      mempool_->CandidatePointersAt(now, Mempool::TxFilter());
  auto block = chain_->AssembleBlock(
      parent->hash, std::span<const Transaction* const>(candidates),
      miner_keys_[miner].public_key(), now, &rng_);
  if (block.ok()) {
    const crypto::Hash256 hash = block->header.Hash();
    Status submitted = chain_->SubmitBlock(*block, now);
    if (submitted.ok()) {
      producer_[hash] = miner;
      ++blocks_mined_;
      AC3_LOG(kDebug) << chain_->params().name << ": miner " << miner
                      << " mined " << hash.ShortHex() << " h="
                      << block->header.height << " txs="
                      << block->txs.size() - 1;
    } else {
      AC3_LOG(kWarn) << chain_->params().name
                     << ": submit failed: " << submitted.ToString();
    }
  }
  ScheduleNext();
}

Result<std::vector<Block>> MiningNetwork::BuildPrivateBranch(
    const crypto::Hash256& parent_hash, size_t length,
    const std::vector<Transaction>& txs, TimePoint start_time) {
  std::vector<Block> branch;
  crypto::Hash256 parent = parent_hash;

  // Stage the branch through a scratch validation by assembling each block
  // against the real chain extended with the staged prefix. We reuse
  // AssembleBlock for the first block (it must see the parent in the
  // store); later blocks are built manually on staged state.
  const BlockEntry* parent_entry = chain_->Get(parent);
  if (parent_entry == nullptr) return Status::NotFound("unknown parent");

  LedgerState state = parent_entry->state;
  uint64_t height = parent_entry->block.header.height;
  crypto::KeyPair attacker = crypto::KeyPair::Generate(&rng_);

  for (size_t i = 0; i < length; ++i) {
    const TimePoint timestamp = start_time + static_cast<Duration>(i);
    BlockEnv env{chain_->params().id, height + 1, timestamp};

    Block block;
    block.header.chain_id = chain_->params().id;
    block.header.height = height + 1;
    block.header.prev_hash = parent;
    block.header.time = timestamp;
    block.header.difficulty_bits = chain_->params().difficulty_bits;

    Amount total_fees = 0;
    std::vector<Transaction> body;
    if (i == 0) {
      for (const Transaction& tx : txs) {
        if (chain_->TxOnBranch(*parent_entry, tx.Id())) continue;
        // O(1) persistent-state snapshot: roll back cleanly on failure.
        LedgerState scratch = state;
        if (!ApplyTransaction(&scratch, tx, env).ok()) continue;
        state = std::move(scratch);
        body.push_back(tx);
        total_fees += tx.fee;
      }
    }

    Transaction coinbase;
    coinbase.type = TxType::kCoinbase;
    coinbase.chain_id = chain_->params().id;
    coinbase.outputs.push_back(TxOutput{
        chain_->params().block_reward + total_fees, attacker.public_key()});
    coinbase.nonce = rng_.NextU64();
    block.txs.push_back(coinbase);
    for (Transaction& tx : body) block.txs.push_back(std::move(tx));

    // Receipts via the canonical execution path: the first block re-runs
    // from the parent state (its body was staged above), later blocks run
    // on the branch state they extend.
    LedgerState verify = i == 0 ? parent_entry->state : state;
    AC3_ASSIGN_OR_RETURN(
        block.receipts,
        ApplyBlockBodyParallel(&verify, block, chain_->params(), &exec_pool_));
    state = std::move(verify);

    block.header.tx_root = block.ComputeTxRoot();
    block.header.receipt_root = block.ComputeReceiptRoot();
    MineHeader(&block.header, &rng_);

    parent = block.header.Hash();
    height = block.header.height;
    branch.push_back(std::move(block));
  }
  return branch;
}

Status MiningNetwork::PublishBranch(const std::vector<Block>& branch) {
  for (const Block& block : branch) {
    AC3_RETURN_IF_ERROR(chain_->SubmitBlock(block, sim_->Now()));
  }
  return Status::OK();
}

}  // namespace ac3::chain
