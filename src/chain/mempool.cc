#include "src/chain/mempool.h"

#include <algorithm>

namespace ac3::chain {

Status Mempool::Submit(const Transaction& tx, TimePoint arrival) {
  const crypto::Hash256 id = tx.Id();
  if (ids_.count(id) > 0) {
    return Status::AlreadyExists("transaction already in mempool");
  }
  Entry entry{arrival, tx, id};
  if (entries_.empty() || entries_.back().arrival <= arrival) {
    entries_.push_back(std::move(entry));  // The production (monotone) path.
  } else {
    // Out-of-order arrival (tests, replays): keep the sort stable so equal
    // arrivals preserve submission order.
    auto at = std::upper_bound(
        entries_.begin(), entries_.end(), arrival,
        [](TimePoint t, const Entry& e) { return t < e.arrival; });
    entries_.insert(at, std::move(entry));
  }
  ids_.insert(id);
  return Status::OK();
}

Mempool::BatchResult Mempool::SubmitBatch(std::span<const Transaction> txs,
                                          TimePoint arrival) {
  BatchResult result;
  result.statuses.reserve(txs.size());
  if (!entries_.empty() && entries_.back().arrival > arrival) {
    // Out-of-order arrival (tests, replays): the per-entry insert position
    // matters, so delegate to the stable-sort Submit path.
    for (const Transaction& tx : txs) {
      Status status = Submit(tx, arrival);
      if (status.ok()) ++result.accepted;
      result.statuses.push_back(std::move(status));
    }
    return result;
  }
  // Monotone (production) path: every accepted entry appends, so both
  // containers grow at most once for the whole batch.
  entries_.reserve(entries_.size() + txs.size());
  ids_.reserve(ids_.size() + txs.size());
  for (const Transaction& tx : txs) {
    const crypto::Hash256 id = tx.Id();
    if (!ids_.insert(id).second) {  // Covers in-batch duplicates too.
      result.statuses.push_back(
          Status::AlreadyExists("transaction already in mempool"));
      continue;
    }
    entries_.push_back(Entry{arrival, tx, id});
    ++result.accepted;
    result.statuses.push_back(Status::OK());
  }
  return result;
}

std::vector<Transaction> Mempool::CandidatesAt(
    TimePoint now, const TxFilter& already_included) const {
  std::vector<Transaction> out;
  for (const Entry& entry : entries_) {
    if (entry.arrival > now) break;  // Sorted: nothing later is visible.
    if (already_included && already_included(entry.id)) continue;
    out.push_back(entry.tx);
  }
  return out;
}

std::vector<Transaction> Mempool::CandidatesAt(
    TimePoint now, const std::set<crypto::Hash256>& already_included) const {
  return CandidatesAt(now, [&](const crypto::Hash256& id) {
    return already_included.count(id) > 0;
  });
}

void Mempool::Prune(const std::set<crypto::Hash256>& included) {
  size_t keep = 0;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (included.count(entries_[i].id) > 0) {
      ids_.erase(entries_[i].id);  // Both containers pruned in one pass.
      continue;
    }
    if (keep != i) entries_[keep] = std::move(entries_[i]);
    ++keep;
  }
  entries_.resize(keep);
}

void Mempool::Prune(std::span<const crypto::Hash256> included) {
  // Unindex first: O(1) per id, and ids not in the pool cost one lookup.
  size_t dropped = 0;
  for (const crypto::Hash256& id : included) dropped += ids_.erase(id);
  if (dropped == 0) return;
  // Compact survivors — an entry survives iff its id is still indexed
  // (entries_ and ids_ are exact mirrors).
  size_t keep = 0;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (ids_.count(entries_[i].id) == 0) continue;
    if (keep != i) entries_[keep] = std::move(entries_[i]);
    ++keep;
  }
  entries_.resize(keep);
}

std::vector<const Transaction*> Mempool::CandidatePointersAt(
    TimePoint now, const TxFilter& already_included) const {
  std::vector<const Transaction*> out;
  for (const Entry& entry : entries_) {
    if (entry.arrival > now) break;  // Sorted: nothing later is visible.
    if (already_included && already_included(entry.id)) continue;
    out.push_back(&entry.tx);
  }
  return out;
}

}  // namespace ac3::chain
