#include "src/chain/mempool.h"

#include <algorithm>

namespace ac3::chain {

Status Mempool::Submit(const Transaction& tx, TimePoint arrival) {
  const crypto::Hash256 id = tx.Id();
  if (ids_.count(id) > 0) {
    return Status::AlreadyExists("transaction already in mempool");
  }
  entries_.push_back(Entry{arrival, tx, id});
  ids_.insert(id);
  return Status::OK();
}

std::vector<Transaction> Mempool::CandidatesAt(
    TimePoint now, const std::set<crypto::Hash256>& already_included) const {
  std::vector<const Entry*> visible;
  for (const Entry& entry : entries_) {
    if (entry.arrival <= now && already_included.count(entry.id) == 0) {
      visible.push_back(&entry);
    }
  }
  std::stable_sort(visible.begin(), visible.end(),
                   [](const Entry* a, const Entry* b) {
                     return a->arrival < b->arrival;
                   });
  std::vector<Transaction> out;
  out.reserve(visible.size());
  for (const Entry* entry : visible) out.push_back(entry->tx);
  return out;
}

void Mempool::Prune(const std::set<crypto::Hash256>& included) {
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&](const Entry& entry) {
                                  return included.count(entry.id) > 0;
                                }),
                 entries_.end());
  std::erase_if(ids_, [&](const crypto::Hash256& id) {
    return included.count(id) > 0;
  });
}

}  // namespace ac3::chain
