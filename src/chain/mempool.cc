#include "src/chain/mempool.h"

#include <algorithm>

namespace ac3::chain {

Status Mempool::Submit(const Transaction& tx, TimePoint arrival) {
  const crypto::Hash256 id = tx.Id();
  if (ids_.count(id) > 0) {
    return Status::AlreadyExists("transaction already in mempool");
  }
  Entry entry{arrival, tx, id};
  if (entries_.empty() || entries_.back().arrival <= arrival) {
    entries_.push_back(std::move(entry));  // The production (monotone) path.
  } else {
    // Out-of-order arrival (tests, replays): keep the sort stable so equal
    // arrivals preserve submission order.
    auto at = std::upper_bound(
        entries_.begin(), entries_.end(), arrival,
        [](TimePoint t, const Entry& e) { return t < e.arrival; });
    entries_.insert(at, std::move(entry));
  }
  ids_.insert(id);
  return Status::OK();
}

std::vector<Transaction> Mempool::CandidatesAt(
    TimePoint now, const TxFilter& already_included) const {
  std::vector<Transaction> out;
  for (const Entry& entry : entries_) {
    if (entry.arrival > now) break;  // Sorted: nothing later is visible.
    if (already_included && already_included(entry.id)) continue;
    out.push_back(entry.tx);
  }
  return out;
}

std::vector<Transaction> Mempool::CandidatesAt(
    TimePoint now, const std::set<crypto::Hash256>& already_included) const {
  return CandidatesAt(now, [&](const crypto::Hash256& id) {
    return already_included.count(id) > 0;
  });
}

void Mempool::Prune(const std::set<crypto::Hash256>& included) {
  size_t keep = 0;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (included.count(entries_[i].id) > 0) {
      ids_.erase(entries_[i].id);  // Both containers pruned in one pass.
      continue;
    }
    if (keep != i) entries_[keep] = std::move(entries_[i]);
    ++keep;
  }
  entries_.resize(keep);
}

}  // namespace ac3::chain
