// The mining process: Poisson block production with propagation-delayed
// miner views, which is where forks come from.
//
// Chain-level block arrival is a Poisson process with the chain's mean
// block interval (the standard PoW model). At each arrival one of the
// miners wins; it builds on the heaviest block *it can see* — a block
// becomes visible to miner m only at (publish_time + gossip delay(block,
// m)). When two blocks land within a gossip window on the same parent, the
// chain forks naturally, and the longest-chain rule later resolves it —
// exactly the dynamics the witness network's depth-d discipline defends
// against (Section 4.2, Lemma 5.3).
//
// An adversarial facility mines a private branch on a chosen parent and
// releases it later — the "fork the witness blockchain for d blocks" attack
// of Section 6.3.

#ifndef AC3_CHAIN_MINING_H_
#define AC3_CHAIN_MINING_H_

#include <queue>
#include <unordered_map>
#include <vector>

#include "src/chain/blockchain.h"
#include "src/chain/mempool.h"
#include "src/common/worker_pool.h"
#include "src/crypto/schnorr.h"
#include "src/sim/simulation.h"

namespace ac3::chain {

struct MiningConfig {
  /// Number of honest miners (distinct views / coinbase identities).
  int miner_count = 4;
  /// Maximum gossip delay; per-(block, miner) delays are deterministic
  /// uniform draws in [0, max].
  Duration max_propagation_delay = Milliseconds(40);
};

class MiningNetwork {
 public:
  MiningNetwork(sim::Simulation* sim, Blockchain* chain, Mempool* mempool,
                MiningConfig config);

  /// Begins producing blocks (schedules the first Poisson arrival).
  void Start();
  /// Stops after the current pending arrival is cancelled.
  void Stop();
  bool running() const { return running_; }

  /// Head visible to `miner` at `now`: heaviest entry whose gossip has
  /// reached the miner. Incremental: each miner keeps a cursor into the
  /// chain's arrival feed plus a small pending-visibility heap, so a query
  /// costs O(new blocks x log pending) instead of a full-store scan.
  /// Queries with a `now` earlier than a previous query for the same miner
  /// fall back to the exact full scan (visibility is monotone, so the
  /// incremental best would over-approximate the past).
  const BlockEntry* VisibleHead(int miner, TimePoint now) const;

  /// Reference implementation: full scan over every stored entry. Exact
  /// same answer as VisibleHead for any (miner, now); kept public as the
  /// equivalence oracle for tests and for non-monotone replay queries.
  const BlockEntry* VisibleHeadScan(int miner, TimePoint now) const;

  /// Mines `length` blocks privately on top of `parent_hash` (including
  /// `txs` in the first block) without submitting them. Timestamps start at
  /// `start_time`. Used by fork-attack experiments.
  Result<std::vector<Block>> BuildPrivateBranch(
      const crypto::Hash256& parent_hash, size_t length,
      const std::vector<Transaction>& txs, TimePoint start_time);

  /// Publishes a previously built branch (submits all blocks now).
  Status PublishBranch(const std::vector<Block>& branch);

  uint64_t blocks_mined() const { return blocks_mined_; }

 private:
  /// Per-miner incremental view over the chain's arrival feed.
  struct MinerView {
    /// A block whose gossip has not yet reached this miner.
    struct Pending {
      TimePoint visible_at;
      const BlockEntry* entry;
      bool operator>(const Pending& other) const {
        return visible_at > other.visible_at;
      }
    };
    /// Next unseen index into Blockchain::arrival_order().
    size_t cursor = 0;
    /// Latest query time (the monotonicity watermark).
    TimePoint last_now = 0;
    /// Heaviest visible entry so far (visibility only ever grows).
    const BlockEntry* best = nullptr;
    std::priority_queue<Pending, std::vector<Pending>, std::greater<Pending>>
        pending;
  };

  void ScheduleNext();
  void ProduceBlock();
  Duration GossipDelay(const crypto::Hash256& block_hash, int miner) const;

  sim::Simulation* sim_;
  Blockchain* chain_;
  Mempool* mempool_;
  MiningConfig config_;
  Rng rng_;
  std::vector<crypto::KeyPair> miner_keys_;
  /// Which miner produced each block (producers see their block at once).
  std::unordered_map<crypto::Hash256, int> producer_;
  /// Lazily grown per-miner trackers (logically const caches).
  mutable std::vector<MinerView> views_;
  sim::EventHandle pending_;
  bool running_ = false;
  uint64_t blocks_mined_ = 0;
  /// Intra-block execution pool for BuildPrivateBranch's verify pass
  /// (lazy: spawns no threads until a wide block's body fans out).
  common::WorkerPool exec_pool_{0};
};

}  // namespace ac3::chain

#endif  // AC3_CHAIN_MINING_H_
