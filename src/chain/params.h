// Per-blockchain parameters, including the paper's Table 1 presets.
//
// Each simulated chain carries two groups of parameters:
//   * simulation parameters (block interval, PoW difficulty, block capacity)
//     that drive the in-process miners, and
//   * real-world metadata (tps from Table 1, 51%-attack cost Ch and blocks
//     per hour dh from Section 6.3) consumed by the analysis module.
//
// Simulated block intervals are scaled down (~1000x) so experiments run in
// milliseconds; ratios between chains are preserved, which is what the
// evaluation's *shape* depends on. Block capacity is sized such that
// measured simulator throughput / kThroughputScale reproduces Table 1.

#ifndef AC3_CHAIN_PARAMS_H_
#define AC3_CHAIN_PARAMS_H_

#include <cstdint>
#include <string>

#include "src/common/sim_time.h"

namespace ac3::chain {

/// Identifies a blockchain inside one simulation environment.
using ChainId = uint32_t;

/// Asset amounts, in the chain's smallest unit.
using Amount = uint64_t;

/// Measured-simulator-tps / paper-tps calibration factor (see header note).
constexpr double kThroughputScale = 10.0;

struct ChainParams {
  std::string name;
  ChainId id = 0;

  // --- simulation parameters -------------------------------------------
  /// Mean Poisson block inter-arrival in simulated ms.
  Duration block_interval = Milliseconds(600);
  /// Proof-of-work: required leading zero bits of the header double-hash.
  uint32_t difficulty_bits = 10;
  /// Maximum transactions per block (capacity; excludes the coinbase).
  size_t max_block_txs = 42;
  /// Depth at which a block is considered stable ("6 confirmations").
  uint32_t stable_depth = 6;

  // --- economics --------------------------------------------------------
  Amount block_reward = 50;
  Amount transfer_fee = 1;
  Amount deploy_fee = 4;   ///< Paper §6.2: deploying SCw ≈ $4 at $300/ETH.
  Amount call_fee = 2;

  // --- real-world metadata (analysis module, §6.3–6.4) ------------------
  /// Transactions per second on the real network (Table 1).
  double real_tps = 7.0;
  /// Real blocks per hour (dh in §6.3).
  double real_blocks_per_hour = 6.0;
  /// Hourly 51%-attack rental cost in USD (Ch in §6.3, crypto51.app).
  double attack_cost_per_hour_usd = 300'000.0;
  /// USD value of one simulated fee unit (for §6.2 dollar figures).
  double usd_per_fee_unit = 1.0;
};

/// The top-4 permissionless cryptocurrencies by market cap (Table 1), plus
/// a generic witness-network preset. `id` is assigned by the environment.
ChainParams BitcoinParams();
ChainParams EthereumParams();
ChainParams LitecoinParams();
ChainParams BitcoinCashParams();
/// A small, fast chain used as a dedicated witness network in unit tests.
ChainParams TestWitnessParams();
/// A fast, roomy chain for unit tests.
ChainParams TestChainParams();

}  // namespace ac3::chain

#endif  // AC3_CHAIN_PARAMS_H_
