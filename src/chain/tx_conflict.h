// Transaction conflict analysis: the scheduling half of intra-block
// parallel execution.
//
// Every transaction's effect on a LedgerState touches a small, statically
// extractable key set: the UTXO outpoints it consumes, the outpoint
// namespace it creates (all outputs land under its own tx id — payouts
// included), and at most one contract snapshot (its own id for a deploy,
// the target id for a call; a redeem is just a call). Two transactions
// whose key sets are disjoint commute: ApplyTransaction reads and writes
// nothing else, so each one's receipt and writes are independent of
// whether the other has been applied.
//
// BuildExecutionWaves turns a block body into "waves" — index sets where
// every pair inside a wave is conflict-free and every conflict pair is
// split across waves in transaction order. The parallel executor
// (ApplyBlockBodyParallel) runs each wave's transactions concurrently
// against the pre-wave state and merges their recorded writes serially in
// index order, which is why its output is byte-identical to the serial
// loop (see ledger.h).

#ifndef AC3_CHAIN_TX_CONFLICT_H_
#define AC3_CHAIN_TX_CONFLICT_H_

#include <cstddef>
#include <vector>

#include "src/chain/transaction.h"

namespace ac3::chain {

/// The statically-known read/write key set of one transaction: everything
/// its execution can observe or mutate in a LedgerState.
struct TxRwSet {
  /// The transaction's id — the namespace all of its created outpoints
  /// (declared outputs and contract payouts alike) live under.
  crypto::Hash256 id;
  /// Consumed outpoints (reads + erases). Points into the source
  /// transaction; the set does not outlive it.
  const std::vector<OutPoint>* inputs = nullptr;
  /// The one contract snapshot touched: own id for kDeploy (created), the
  /// target for kCall (read + replaced). Meaningful iff touches_contract.
  crypto::Hash256 contract_key;
  bool touches_contract = false;
};

/// Extracts the read/write set. Computes tx.Id() (one SHA-256 of the
/// encoding); callers batching many transactions should hold the result.
TxRwSet ExtractRwSet(const Transaction& tx);

/// True when the two sets overlap — shared input outpoint, one spending
/// an outpoint the other creates (either direction), or the same contract
/// snapshot — i.e. when the two transactions must execute in block order.
bool RwSetsConflict(const TxRwSet& a, const TxRwSet& b);

/// Schedules a block body (txs[0] is the coinbase and is excluded — it is
/// applied by the block epilogue, not the wave executor) into conflict-free
/// waves. Within a wave no two transactions conflict; for every
/// conflicting pair i < j, j lands in a strictly later wave than i.
/// Indices inside each wave are ascending. O(total keys) expected via
/// last-writer hash maps.
std::vector<std::vector<size_t>> BuildExecutionWaves(
    const std::vector<Transaction>& txs);

}  // namespace ac3::chain

#endif  // AC3_CHAIN_TX_CONFLICT_H_
