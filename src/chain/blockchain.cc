#include "src/chain/blockchain.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <unordered_set>
#include <utility>

#include "src/chain/pow.h"
#include "src/chain/tx_conflict.h"
#include "src/common/logging.h"
#include "src/common/worker_pool.h"

namespace ac3::chain {

Blockchain::Blockchain(ChainParams params, std::vector<TxOutput> allocations,
                       ChainIndex::Options index_options)
    : params_(std::move(params)), index_(index_options) {
  // Synthetic genesis: a coinbase materializing the initial allocations.
  Transaction genesis_tx;
  genesis_tx.type = TxType::kCoinbase;
  genesis_tx.chain_id = params_.id;
  genesis_tx.outputs = std::move(allocations);
  genesis_tx.nonce = 0;

  Block genesis_block;
  genesis_block.header.chain_id = params_.id;
  genesis_block.header.height = 0;
  genesis_block.header.time = 0;
  genesis_block.header.difficulty_bits = 0;  // Genesis needs no PoW.
  genesis_block.txs.push_back(genesis_tx);
  Receipt genesis_receipt;
  genesis_receipt.tx_id = genesis_tx.Id();
  genesis_receipt.note = "genesis";
  genesis_block.receipts.push_back(genesis_receipt);
  genesis_block.header.tx_root = genesis_block.ComputeTxRoot();
  genesis_block.header.receipt_root = genesis_block.ComputeReceiptRoot();

  BlockEntry entry;
  entry.block = genesis_block;
  entry.hash = genesis_block.header.Hash();
  entry.total_work = 0;
  entry.arrival_time = 0;
  entry.arrival_seq = next_arrival_seq_++;
  entry.state = GenesisState(genesis_tx);
  entry.included_tx_count = 1;
  entry.tx_index[genesis_tx.Id()] = 0;

  const crypto::Hash256 genesis_hash = entry.hash;
  genesis_ = index_.Store(genesis_hash, std::move(entry));
  head_ = genesis_;
  arrival_order_.push_back(genesis_);
}

namespace {

/// Widened candidate selection is only worth the per-candidate snapshot
/// copy + conflict bookkeeping once the pool has enough entries to spread
/// (mirrors kMinParallelBodyTxs in ledger.cc).
constexpr size_t kMinParallelSelection = 8;

/// Clears the lowest set bit (Bitcoin's skip-height helper).
uint64_t InvertLowestOne(uint64_t n) { return n & (n - 1); }

/// Height the skip pointer of a block at `height` jumps to: mostly a big
/// power-of-two-aligned hop, with a +1 wobble on odd heights so paths mix
/// both long and short jumps (exactly Bitcoin's GetSkipHeight).
uint64_t SkipHeightFor(uint64_t height) {
  if (height < 2) return 0;
  return (height & 1) ? InvertLowestOne(InvertLowestOne(height - 1)) + 1
                      : InvertLowestOne(height);
}

}  // namespace

const BlockEntry* Blockchain::GetAncestor(const BlockEntry* entry,
                                          uint64_t height) const {
  if (entry == nullptr || height > entry->height()) return nullptr;
  const BlockEntry* walk = entry;
  uint64_t walk_height = walk->height();
  while (walk_height > height) {
    const uint64_t skip_height = SkipHeightFor(walk_height);
    // Take the long jump unless it overshoots in a way the parent's own
    // skip would have served better (Bitcoin's heuristic, which bounds the
    // walk at O(log height)).
    if (walk->skip != nullptr &&
        (skip_height == height ||
         (skip_height > height &&
          !(SkipHeightFor(walk_height - 1) < skip_height - 2 &&
            SkipHeightFor(walk_height - 1) >= height)))) {
      walk = walk->skip;
      walk_height = skip_height;
    } else {
      assert(walk->parent != nullptr);
      walk = walk->parent;
      --walk_height;
    }
  }
  return walk;
}

bool Blockchain::OnBranch(const BlockEntry& tip,
                          const BlockEntry* entry) const {
  return entry != nullptr && entry->height() <= tip.height() &&
         GetAncestor(&tip, entry->height()) == entry;
}

bool Blockchain::TxOnBranch(const BlockEntry& tip,
                            const crypto::Hash256& tx_id) const {
  for (const TxLocation& occurrence : index_.OccurrencesOf(tx_id)) {
    if (OnBranch(tip, occurrence.entry)) return true;
  }
  return false;
}

const BlockEntry* Blockchain::Get(const crypto::Hash256& hash) const {
  return index_.FindEntry(hash);
}

Blockchain::~Blockchain() = default;

common::WorkerPool* Blockchain::ExecPool() const {
  if (exec_pool_ == nullptr) {
    exec_pool_ = std::make_unique<common::WorkerPool>(0);
  }
  return exec_pool_.get();
}

Status Blockchain::ValidateAgainstParent(const Block& block,
                                         const BlockEntry& parent,
                                         std::vector<Receipt>* receipts,
                                         LedgerState* post_state,
                                         common::WorkerPool* exec_pool) const {
  const BlockHeader& header = block.header;
  if (header.chain_id != params_.id) {
    return Status::InvalidArgument("block for another chain");
  }
  if (header.height != parent.block.header.height + 1) {
    return Status::InvalidArgument("height does not extend parent");
  }
  if (header.difficulty_bits != params_.difficulty_bits) {
    return Status::VerificationFailed("wrong difficulty");
  }
  if (!CheckProofOfWork(header)) {
    return Status::VerificationFailed("proof of work does not meet target");
  }
  if (header.tx_root != block.ComputeTxRoot()) {
    return Status::VerificationFailed("tx merkle root mismatch");
  }
  if (header.receipt_root != block.ComputeReceiptRoot()) {
    return Status::VerificationFailed("receipt merkle root mismatch");
  }
  if (block.txs.size() > params_.max_block_txs + 1) {  // +1 for coinbase.
    return Status::InvalidArgument("block over capacity");
  }
  // No transaction may repeat on this branch.
  for (size_t i = 1; i < block.txs.size(); ++i) {
    if (TxOnBranch(parent, block.txs[i].Id())) {
      return Status::InvalidArgument("transaction already included on branch");
    }
  }

  *post_state = parent.state;  // Copy-on-apply snapshot.
  AC3_ASSIGN_OR_RETURN(
      *receipts, ApplyBlockBodyParallel(post_state, block, params_, exec_pool));

  // The block's declared receipts must match deterministic re-execution.
  if (receipts->size() != block.receipts.size()) {
    return Status::VerificationFailed("receipt count mismatch");
  }
  for (size_t i = 0; i < receipts->size(); ++i) {
    if ((*receipts)[i].Encode() != block.receipts[i].Encode()) {
      return Status::VerificationFailed("receipt mismatch at index " +
                                        std::to_string(i));
    }
  }
  return Status::OK();
}

Status Blockchain::SubmitBlock(const Block& block, TimePoint arrival_time) {
  const crypto::Hash256 hash = block.header.Hash();
  if (index_.Contains(hash)) {
    return Status::AlreadyExists("block already known");
  }
  const BlockEntry* parent = Get(block.header.prev_hash);
  if (parent == nullptr) {
    return Status::NotFound("parent block unknown (orphan)");
  }

  std::vector<Receipt> receipts;
  LedgerState post_state;
  AC3_RETURN_IF_ERROR(
      ValidateAgainstParent(block, *parent, &receipts, &post_state,
                            ExecPool()));
  CommitValidated(block, hash, parent, std::move(receipts),
                  std::move(post_state), arrival_time);
  return Status::OK();
}

void Blockchain::CommitValidated(const Block& block,
                                 const crypto::Hash256& hash,
                                 const BlockEntry* parent,
                                 std::vector<Receipt> receipts,
                                 LedgerState post_state,
                                 TimePoint arrival_time) {
  BlockEntry entry;
  entry.block = block;
  entry.hash = hash;
  entry.total_work =
      parent->total_work + WorkForDifficulty(block.header.difficulty_bits);
  entry.arrival_time = arrival_time;
  entry.arrival_seq = next_arrival_seq_++;
  entry.state = std::move(post_state);
  entry.parent = parent;
  entry.skip = GetAncestor(parent, SkipHeightFor(block.header.height));
  entry.included_tx_count = parent->included_tx_count + block.txs.size();
  for (uint32_t i = 0; i < block.txs.size(); ++i) {
    const Transaction& tx = block.txs[i];
    entry.tx_index[tx.Id()] = i;
    if (tx.type == TxType::kCall) {
      entry.calls.push_back(
          CallRecord{tx.contract_id, tx.function, i, receipts[i].success});
    }
  }

  const BlockEntry* stored = index_.Store(hash, std::move(entry));
  arrival_order_.push_back(stored);

  // Longest-chain rule: adopt strictly heavier branches only, so the
  // first-seen block wins ties (Section 2.1: "miners accept the first
  // received mined block").
  if (stored->total_work > head_->total_work) {
    if (head_->hash != block.header.prev_hash) {
      AC3_LOG(kInfo) << params_.name << ": reorg to "
                     << hash.ShortHex() << " at height "
                     << block.header.height;
    }
    const BlockEntry* old_head = head_;
    head_ = stored;
    // Iterate by index: a listener may subscribe another listener (growing
    // the vector) but unsubscription mid-notification is not supported.
    for (size_t i = 0; i < head_listeners_.size(); ++i) {
      head_listeners_[i].second(*old_head);
    }
  }
}

Blockchain::BatchSubmitResult Blockchain::SubmitBlocks(
    const std::vector<Block>& blocks, TimePoint arrival_time, int threads) {
  const size_t n = blocks.size();
  BatchSubmitResult result;
  result.statuses.assign(n, Status::OK());
  if (n == 0) return result;

  std::vector<crypto::Hash256> hashes(n);
  std::vector<crypto::Hash256> parents(n);
  std::unordered_map<crypto::Hash256, std::vector<size_t>> by_hash;
  for (size_t i = 0; i < n; ++i) {
    hashes[i] = blocks[i].header.Hash();
    parents[i] = blocks[i].header.prev_hash;
    by_hash[hashes[i]].push_back(i);  // Ascending by construction.
  }
  std::vector<char> settled(n, 0);

  // True when an earlier, not-yet-settled batch block carries `i`'s
  // parent hash — `i` must wait for that block's outcome, exactly as a
  // serial loop would have it already resolved by `i`'s turn.
  const auto waiting_on_earlier = [&](size_t i) {
    auto it = by_hash.find(parents[i]);
    if (it == by_hash.end()) return false;
    for (size_t j : it->second) {
      if (j >= i) break;
      if (!settled[j]) return true;
    }
    return false;
  };

  struct ValidationSlot {
    Status status;
    std::vector<Receipt> receipts;
    LedgerState post_state;
  };
  std::vector<size_t> to_validate;
  std::vector<ValidationSlot> validated;
  std::unordered_set<crypto::Hash256> claimed;  // Hashes validating per round.
  // Intra-block execution pool for the current round. Width-1 rounds (the
  // deep linear-chain catch-up shape) run ParallelFor(1, ·) inline on this
  // thread, leaving the pool idle — so the lone block's body can fan out
  // on it. Wider rounds keep the pool busy across blocks; each block then
  // executes serially (nullptr disables the intra-block fan-out).
  common::WorkerPool* round_exec_pool = nullptr;
  const std::function<void(size_t)> validate_one = [&](size_t r) {
    const size_t i = to_validate[r];
    validated[r].status =
        ValidateAgainstParent(blocks[i], *Get(parents[i]),
                              &validated[r].receipts,
                              &validated[r].post_state, round_exec_pool);
  };
  // The shared worker-pool primitive: lazily spawned on the first round
  // with >= 2 validations, reused (two barrier hops) across later rounds,
  // and sized to the widest round seen so far. Its ResolveThreads policy
  // also owns the `threads <= 0` fallback, hardware_concurrency()==0
  // included.
  common::WorkerPool pool(threads);

  // Each round takes the longest prefix of unsettled blocks that can be
  // resolved without waiting (parent stored, duplicate, or orphan),
  // validates the parallel part, and commits in input order — so stored
  // entries, statuses, arrival sequence, head movements, and listener
  // callbacks are *exactly* what the serial loop produces. Every round
  // settles at least the frontier block (which can never be waiting: all
  // earlier blocks are settled), and each block is scanned O(1) times
  // amortized, so classification is O(n) even for a 10k-block linear
  // chain. Level-major batch order (siblings adjacent, parents before
  // children) maximizes per-round width.
  size_t frontier = 0;
  while (frontier < n) {
    if (settled[frontier]) {
      ++frontier;
      continue;
    }
    to_validate.clear();
    claimed.clear();
    for (size_t i = frontier; i < n; ++i) {
      if (settled[i]) continue;
      if (index_.Contains(hashes[i])) {
        // Duplicate of a stored block: the serial short-circuit — no PoW
        // or re-execution work.
        result.statuses[i] = Status::AlreadyExists("block already known");
        settled[i] = 1;
        continue;
      }
      if (claimed.count(hashes[i]) > 0) {
        // In-batch duplicate of a block validating this round: defer one
        // round instead of validating twice. If the first copy commits,
        // next round's stored-duplicate check answers AlreadyExists; if
        // it fails, this copy re-validates to the same error — both
        // exactly the serial statuses.
        continue;
      }
      if (index_.Contains(parents[i])) {
        to_validate.push_back(i);
        claimed.insert(hashes[i]);
        continue;
      }
      if (waiting_on_earlier(i)) break;  // Resolves after this round.
      result.statuses[i] = Status::NotFound("parent block unknown (orphan)");
      settled[i] = 1;
    }

    // Parallel phase: validation is read-only against committed state.
    validated.assign(to_validate.size(), ValidationSlot{});
    round_exec_pool = to_validate.size() == 1 ? &pool : nullptr;
    pool.ParallelFor(to_validate.size(), validate_one);

    // Serial phase: commit in input order (to_validate is ascending).
    for (size_t r = 0; r < to_validate.size(); ++r) {
      const size_t i = to_validate[r];
      if (index_.Contains(hashes[i])) {
        // Defensive: to_validate hashes are unique per round (`claimed`),
        // so this only fires if that invariant is ever relaxed.
        result.statuses[i] = Status::AlreadyExists("block already known");
      } else if (validated[r].status.ok()) {
        CommitValidated(blocks[i], hashes[i], Get(parents[i]),
                        std::move(validated[r].receipts),
                        std::move(validated[r].post_state), arrival_time);
        ++result.accepted;
      } else {
        result.statuses[i] = std::move(validated[r].status);
      }
      settled[i] = 1;
    }
  }
  return result;
}

Blockchain::SubscriptionId Blockchain::SubscribeHead(HeadListener listener) {
  const SubscriptionId id = next_subscription_id_++;
  head_listeners_.emplace_back(id, std::move(listener));
  return id;
}

void Blockchain::UnsubscribeHead(SubscriptionId id) {
  std::erase_if(head_listeners_,
                [id](const auto& entry) { return entry.first == id; });
}

bool Blockchain::IsCanonical(const crypto::Hash256& hash) const {
  return ConfirmationsOf(hash).has_value();
}

std::optional<uint64_t> Blockchain::ConfirmationsOf(
    const crypto::Hash256& hash) const {
  const BlockEntry* target = Get(hash);
  if (!OnBranch(*head_, target)) return std::nullopt;
  return head_->block.header.height - target->block.header.height;
}

const BlockEntry* Blockchain::StableBlock(uint32_t depth) const {
  const uint64_t head_height = head_->height();
  const uint64_t target = depth >= head_height ? 0 : head_height - depth;
  const BlockEntry* entry = GetAncestor(head_, target);
  assert(entry != nullptr);
  return entry;
}

Result<std::vector<BlockHeader>> Blockchain::HeadersAfter(
    const crypto::Hash256& ancestor_hash) const {
  const BlockEntry* ancestor = Get(ancestor_hash);
  if (!OnBranch(*head_, ancestor)) {
    return Status::NotFound("ancestor not on canonical chain");
  }
  std::vector<BlockHeader> headers;
  headers.reserve(head_->height() - ancestor->height());
  for (const BlockEntry* cursor = head_; cursor != ancestor;
       cursor = cursor->parent) {
    headers.push_back(cursor->block.header);
  }
  std::reverse(headers.begin(), headers.end());
  return headers;
}

std::optional<Blockchain::TxLocation> Blockchain::FindTx(
    const crypto::Hash256& tx_id) const {
  // The index filters by the canonical branch: head_ supplies "canonical".
  return index_.FindTx(tx_id, [this](const BlockEntry& entry) {
    return OnBranch(*head_, &entry);
  });
}

std::optional<Blockchain::TxLocation> Blockchain::FindCall(
    const crypto::Hash256& contract_id, const std::string& function,
    bool require_success) const {
  return index_.FindCall(contract_id, function, require_success,
                         [this](const BlockEntry& entry) {
                           return OnBranch(*head_, &entry);
                         });
}

Result<contracts::ContractPtr> Blockchain::ContractAtHead(
    const crypto::Hash256& id) const {
  return head_->state.GetContract(id);
}

Result<Block> Blockchain::AssembleBlock(
    const crypto::Hash256& parent_hash,
    const std::vector<Transaction>& candidates,
    const crypto::PublicKey& miner, TimePoint now, Rng* rng) const {
  std::vector<const Transaction*> pointers;
  pointers.reserve(candidates.size());
  for (const Transaction& tx : candidates) pointers.push_back(&tx);
  return AssembleBlock(parent_hash, pointers, miner, now, rng);
}

Result<Block> Blockchain::AssembleBlock(
    const crypto::Hash256& parent_hash,
    std::span<const Transaction* const> candidates,
    const crypto::PublicKey& miner, TimePoint now, Rng* rng,
    bool mine) const {
  common::WorkerPool* pool = ExecPool();
  // Same gating as ApplyBlockBodyParallel: the serial loop wins on small
  // candidate sets, single-threaded pools, and under the env pin.
  if (pool->threads() <= 1 || BlockExecutionPinnedSerial() ||
      candidates.size() < kMinParallelSelection) {
    pool = nullptr;
  }
  return AssembleBlockOn(pool, parent_hash, candidates, miner, now, rng, mine);
}

Result<Block> Blockchain::AssembleBlockOn(
    common::WorkerPool* pool, const crypto::Hash256& parent_hash,
    std::span<const Transaction* const> candidates,
    const crypto::PublicKey& miner, TimePoint now, Rng* rng,
    bool mine) const {
  const BlockEntry* parent = Get(parent_hash);
  if (parent == nullptr) return Status::NotFound("unknown parent");
  if (pool != nullptr &&
      (pool->threads() <= 1 || candidates.size() < kMinParallelSelection)) {
    pool = nullptr;
  }

  BlockEnv env{params_.id, parent->block.header.height + 1, now};

  // Selection pass: FIFO, skip invalid / duplicate transactions. The
  // per-candidate scratch snapshot is O(1) thanks to the persistent state.
  LedgerState working = parent->state;
  std::vector<const Transaction*> chosen;
  std::vector<Receipt> chosen_receipts;
  std::set<crypto::Hash256> chosen_ids;
  Amount total_fees = 0;

  // Serial acceptance of one candidate against the current working state —
  // the oracle semantics every candidate ultimately gets (directly in the
  // serial loop; as the re-run fallback in the widened one).
  const auto try_accept = [&](const Transaction& tx,
                              const crypto::Hash256& tx_id) {
    LedgerState scratch = working;  // Roll back cleanly on failure.
    auto receipt = ApplyTransaction(&scratch, tx, env);
    if (!receipt.ok()) {
      AC3_LOG(kDebug) << params_.name << ": skip tx " << tx_id.ShortHex()
                      << " — " << receipt.status().ToString();
      return false;
    }
    working = std::move(scratch);
    chosen_receipts.push_back(std::move(*receipt));
    return true;
  };

  if (pool == nullptr) {
    for (const Transaction* tx : candidates) {
      if (chosen.size() >= params_.max_block_txs) break;
      const crypto::Hash256 tx_id = tx->Id();
      if (TxOnBranch(*parent, tx_id) || chosen_ids.count(tx_id) > 0) {
        continue;
      }
      if (!try_accept(*tx, tx_id)) continue;
      chosen.push_back(tx);
      chosen_ids.insert(tx_id);
      total_fees += tx->fee;
    }
  } else {
    // Widened selection: execute a FIFO window of candidates speculatively
    // against the round-start snapshot in parallel, then adopt serially in
    // candidate order. A speculative result is adopted as-is only when its
    // read/write key set (tx_conflict.h) is disjoint from everything
    // accepted since the snapshot — disjointness means the speculative
    // execution observed exactly the keys the serial loop would have shown
    // it, so its receipt and write log ARE the serial ones, and replaying
    // the log through the aggregate-maintaining mutators reproduces the
    // serial post-state. Anything else (speculation failed, or a conflict
    // with an accepted candidate) re-runs serially against the current
    // working state — literally the oracle path for that candidate. The
    // round window rides ahead of the remaining capacity so a tail of
    // skipped candidates cannot starve the block.
    struct Spec {
      TxRwSet rw;
      Status status = Status::OK();
      Receipt receipt;
      TxWrites writes;
      bool pre_skip = false;  ///< On-branch / already chosen at round start.
    };
    std::vector<Spec> specs;
    size_t next = 0;
    while (next < candidates.size() && chosen.size() < params_.max_block_txs) {
      const size_t capacity_left = params_.max_block_txs - chosen.size();
      const size_t window = std::min(
          candidates.size() - next,
          std::max<size_t>(2 * capacity_left, kMinParallelSelection));
      specs.assign(window, Spec{});
      pool->ParallelFor(window, [&](size_t k) {
        const Transaction& tx = *candidates[next + k];
        Spec& spec = specs[k];
        spec.rw = ExtractRwSet(tx);
        if (TxOnBranch(*parent, spec.rw.id) ||
            chosen_ids.count(spec.rw.id) > 0) {
          spec.pre_skip = true;
          return;
        }
        // O(1) snapshot of the round-start state; concurrent snapshot
        // reads are safe via the persistent maps' atomic refcounts.
        LedgerState scratch = working;
        auto receipt = ApplyTransactionRecorded(&scratch, tx, env,
                                                &spec.writes);
        if (receipt.ok()) {
          spec.receipt = std::move(*receipt);
        } else {
          spec.status = receipt.status();
        }
      });
      // Serial FIFO adoption.
      std::vector<const TxRwSet*> accepted_this_round;
      for (size_t k = 0; k < window; ++k) {
        if (chosen.size() >= params_.max_block_txs) break;
        Spec& spec = specs[k];
        const Transaction& tx = *candidates[next + k];
        // Re-check the duplicate set: it may have grown this round.
        if (spec.pre_skip || chosen_ids.count(spec.rw.id) > 0) continue;
        bool adopted = false;
        if (spec.status.ok()) {
          bool conflict = false;
          for (const TxRwSet* other : accepted_this_round) {
            if (RwSetsConflict(*other, spec.rw)) {
              conflict = true;
              break;
            }
          }
          if (!conflict) {
            for (const OutPoint& outpoint : spec.writes.spent) {
              working.SpendUtxo(outpoint);
            }
            for (const auto& [outpoint, output] : spec.writes.created) {
              working.AddUtxo(outpoint, output);
            }
            for (const auto& [id, contract] : spec.writes.contract_puts) {
              working.contracts.Put(id, contract);
            }
            chosen_receipts.push_back(std::move(spec.receipt));
            adopted = true;
          }
        }
        if (!adopted && !try_accept(tx, spec.rw.id)) continue;
        chosen.push_back(&tx);
        chosen_ids.insert(spec.rw.id);
        total_fees += tx.fee;
        accepted_this_round.push_back(&spec.rw);
      }
      next += window;
    }
  }

  // Coinbase pays the reward plus the collected fees to the miner.
  Transaction coinbase;
  coinbase.type = TxType::kCoinbase;
  coinbase.chain_id = params_.id;
  coinbase.outputs.push_back(
      TxOutput{params_.block_reward + total_fees, miner});
  coinbase.nonce = rng->NextU64();  // Uniquify across blocks.

  Block block;
  block.header.chain_id = params_.id;
  block.header.height = env.height;
  block.header.prev_hash = parent_hash;
  block.header.time = now;
  block.header.difficulty_bits = params_.difficulty_bits;
  block.txs.reserve(1 + chosen.size());
  block.txs.push_back(std::move(coinbase));
  for (const Transaction* tx : chosen) block.txs.push_back(*tx);

  // Declared receipts come straight from the selection pass: each chosen
  // transaction's receipt was produced by the same ApplyTransaction call
  // sequence, against the same evolving state, that ApplyBlockBody runs
  // for validators (the serial loop creates the coinbase outputs *after*
  // the body, so body transactions never observe them). The old
  // re-execution pass ran every transaction a second time for provably
  // identical results; ValidateAgainstParent's receipt-equality check
  // still re-derives them on every submission, and the golden determinism
  // fingerprints pin the block hashes.
  Receipt coinbase_receipt;
  coinbase_receipt.tx_id = block.txs[0].Id();
  coinbase_receipt.note = "coinbase";
  block.receipts.reserve(1 + chosen_receipts.size());
  block.receipts.push_back(std::move(coinbase_receipt));
  for (Receipt& receipt : chosen_receipts) {
    block.receipts.push_back(std::move(receipt));
  }
  block.header.tx_root = block.ComputeTxRoot();
  block.header.receipt_root = block.ComputeReceiptRoot();
  if (mine) MineHeader(&block.header, rng);
  return block;
}

}  // namespace ac3::chain
