// Proof of work: mining and verification.
//
// A header satisfies PoW when its double-SHA-256 hash has at least
// `difficulty_bits` leading zero bits. Difficulty is fixed per chain (no
// retargeting — the simulator schedules block arrival times explicitly, so
// PoW here provides the *verifiability* that Section 4.3's evidence checks
// need, not the timing).

#ifndef AC3_CHAIN_POW_H_
#define AC3_CHAIN_POW_H_

#include "src/chain/block.h"
#include "src/common/random.h"
#include "src/common/status.h"

namespace ac3::chain {

/// True when `hash` has >= `difficulty_bits` leading zero bits.
bool HashMeetsDifficulty(const crypto::Hash256& hash, uint32_t difficulty_bits);

/// True when the header's own hash meets its declared difficulty.
bool CheckProofOfWork(const BlockHeader& header);

/// Searches nonces (starting from a random offset drawn from `rng`, in
/// ascending order) until the header meets its difficulty; mutates
/// `header->nonce`. Returns the number of nonces visited up to and
/// including the winner — a deterministic function of the seed, pinned by
/// the committed BENCH witnesses.
///
/// The search runs several interleaved lanes per loop iteration — two
/// (HeaderHasher::HashPairWithNonces over nonce, nonce+1) on the
/// scalar/SHA-NI SHA-256 dispatch levels, eight
/// (HeaderHasher::HashBatchWithNonces) on the AVX2 message-parallel
/// level — overlapping the independent SHA-256 dependency chains. Lanes
/// are checked in ascending nonce order, so the winning nonce and the
/// returned count are identical to MineHeaderScalar on every dispatch
/// level — only the wall-clock per nonce changes.
uint64_t MineHeader(BlockHeader* header, Rng* rng);

/// The one-nonce-at-a-time reference search. Kept as the equivalence
/// oracle for MineHeader (tests assert identical winning nonces and eval
/// counts across a seed/difficulty grid); not used on the hot path.
uint64_t MineHeaderScalar(BlockHeader* header, Rng* rng);

/// Expected work contributed by one block of the given difficulty
/// (2^difficulty_bits hash evaluations). Used by the longest-chain rule.
double WorkForDifficulty(uint32_t difficulty_bits);

}  // namespace ac3::chain

#endif  // AC3_CHAIN_POW_H_
