// Proof of work: mining and verification.
//
// A header satisfies PoW when its double-SHA-256 hash has at least
// `difficulty_bits` leading zero bits. Difficulty is fixed per chain (no
// retargeting — the simulator schedules block arrival times explicitly, so
// PoW here provides the *verifiability* that Section 4.3's evidence checks
// need, not the timing).

#ifndef AC3_CHAIN_POW_H_
#define AC3_CHAIN_POW_H_

#include "src/chain/block.h"
#include "src/common/random.h"
#include "src/common/status.h"

namespace ac3::chain {

/// True when `hash` has >= `difficulty_bits` leading zero bits.
bool HashMeetsDifficulty(const crypto::Hash256& hash, uint32_t difficulty_bits);

/// True when the header's own hash meets its declared difficulty.
bool CheckProofOfWork(const BlockHeader& header);

/// Searches nonces (starting from a random offset drawn from `rng`) until
/// the header meets its difficulty; mutates `header->nonce`. Returns the
/// number of hash evaluations performed (for benchmarks).
uint64_t MineHeader(BlockHeader* header, Rng* rng);

/// Expected work contributed by one block of the given difficulty
/// (2^difficulty_bits hash evaluations). Used by the longest-chain rule.
double WorkForDifficulty(uint32_t difficulty_bits);

}  // namespace ac3::chain

#endif  // AC3_CHAIN_POW_H_
