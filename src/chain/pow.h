// Proof of work: mining and verification.
//
// A header satisfies PoW when its double-SHA-256 hash has at least
// `difficulty_bits` leading zero bits. Difficulty is fixed per chain (no
// retargeting — the simulator schedules block arrival times explicitly, so
// PoW here provides the *verifiability* that Section 4.3's evidence checks
// need, not the timing).

#ifndef AC3_CHAIN_POW_H_
#define AC3_CHAIN_POW_H_

#include <span>
#include <vector>

#include "src/chain/block.h"
#include "src/common/random.h"
#include "src/common/status.h"

namespace ac3::chain {

/// True when `hash` has >= `difficulty_bits` leading zero bits.
bool HashMeetsDifficulty(const crypto::Hash256& hash, uint32_t difficulty_bits);

/// True when the header's own hash meets its declared difficulty.
bool CheckProofOfWork(const BlockHeader& header);

/// Searches nonces (starting from a random offset drawn from `rng`, in
/// ascending order) until the header meets its difficulty; mutates
/// `header->nonce`. Returns the number of nonces visited up to and
/// including the winner — a deterministic function of the seed, pinned by
/// the committed BENCH witnesses.
///
/// The search runs several interleaved lanes per loop iteration — two
/// (HeaderHasher::HashPairWithNonces over nonce, nonce+1) on the
/// scalar/SHA-NI SHA-256 dispatch levels, eight
/// (HeaderHasher::HashBatchWithNonces) on the AVX2 message-parallel
/// level — overlapping the independent SHA-256 dependency chains. Lanes
/// are checked in ascending nonce order, so the winning nonce and the
/// returned count are identical to MineHeaderScalar on every dispatch
/// level — only the wall-clock per nonce changes.
uint64_t MineHeader(BlockHeader* header, Rng* rng);

/// The one-nonce-at-a-time reference search. Kept as the equivalence
/// oracle for MineHeader (tests assert identical winning nonces and eval
/// counts across a seed/difficulty grid); not used on the hot path.
uint64_t MineHeaderScalar(BlockHeader* header, Rng* rng);

/// Mines every header in `headers` — multi-miner contention in one batch.
/// Returns the per-header eval counts, index-aligned with `headers`.
///
/// Semantically identical to calling MineHeader(headers[i], rng) in index
/// order: each header's start nonce is drawn from `rng` in that order
/// (MineHeader draws exactly one NextU64 per call), each header's nonces
/// are visited ascending from its start, and eval counts are "nonces
/// visited up to and including the winner" — so winning nonces and counts
/// match the per-header loop (and hence MineHeaderScalar) on every
/// SHA-256 dispatch level. The difference is occupancy: every loop
/// iteration fills all Sha256::PreferredMiningLanes() lanes with attempts
/// spread across the still-unsolved headers (HeaderHasher's cross-hasher
/// HashLanesWithNonces), so the AVX2 8-way rung runs full even when each
/// miner's difficulty is low — the realistic many-miners-low-difficulty
/// regime, where per-miner MineHeader would run short, underfilled
/// batches.
std::vector<uint64_t> MineHeaderBatch(std::span<BlockHeader* const> headers,
                                      Rng* rng);

/// Expected work contributed by one block of the given difficulty
/// (2^difficulty_bits hash evaluations). Used by the longest-chain rule.
double WorkForDifficulty(uint32_t difficulty_bits);

}  // namespace ac3::chain

#endif  // AC3_CHAIN_POW_H_
