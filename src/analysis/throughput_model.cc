#include "src/analysis/throughput_model.h"

#include <algorithm>
#include <cassert>

namespace ac3::analysis {

double CompositeThroughput(const std::vector<double>& involved_tps) {
  if (involved_tps.empty()) return 0.0;
  return *std::min_element(involved_tps.begin(), involved_tps.end());
}

double Ac2tThroughput(const std::vector<chain::ChainParams>& asset_chains,
                      const chain::ChainParams& witness) {
  std::vector<double> tps;
  tps.reserve(asset_chains.size() + 1);
  for (const chain::ChainParams& params : asset_chains) {
    tps.push_back(params.real_tps);
  }
  tps.push_back(witness.real_tps);
  return CompositeThroughput(tps);
}

const chain::ChainParams& BestWitnessAmongInvolved(
    const std::vector<chain::ChainParams>& involved) {
  assert(!involved.empty());
  return *std::max_element(involved.begin(), involved.end(),
                           [](const chain::ChainParams& a,
                              const chain::ChainParams& b) {
                             return a.real_tps < b.real_tps;
                           });
}

std::vector<ThroughputRow> Table1Rows() {
  return {
      {chain::BitcoinParams().name, chain::BitcoinParams().real_tps},
      {chain::EthereumParams().name, chain::EthereumParams().real_tps},
      {chain::LitecoinParams().name, chain::LitecoinParams().real_tps},
      {chain::BitcoinCashParams().name, chain::BitcoinCashParams().real_tps},
  };
}

}  // namespace ac3::analysis
