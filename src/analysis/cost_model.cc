#include "src/analysis/cost_model.h"

namespace ac3::analysis {

chain::Amount HerlihyFee(uint32_t n_edges, chain::Amount deploy_fee,
                         chain::Amount call_fee) {
  return static_cast<chain::Amount>(n_edges) * (deploy_fee + call_fee);
}

chain::Amount Ac3wnFee(uint32_t n_edges, chain::Amount deploy_fee,
                       chain::Amount call_fee) {
  return static_cast<chain::Amount>(n_edges + 1) * (deploy_fee + call_fee);
}

double Ac3wnOverheadRatio(uint32_t n_edges) {
  return n_edges == 0 ? 0.0 : 1.0 / static_cast<double>(n_edges);
}

double ScwDollarCost(double eth_cost_at_300, double usd_per_ether) {
  // The contract's gas footprint is rate-independent; only the ETH/USD rate
  // scales the dollar figure.
  return eth_cost_at_300 * (usd_per_ether / 300.0);
}

}  // namespace ac3::analysis
