// Section 6.1 closed-form latency models.
//
// "The single leader atomic swap protocol ... has two phases ... resulting
//  in [an overall latency] of 2·Δ·Diam(D)."
// "The AC3WN protocol has four phases ... The overall latency ... equals
//  the latency summation of these four phases, 4·Δ."
//
// The models are expressed in units of Δ so simulated runs (which measure
// wall-clock Δs) and the paper's Figure 10 curves are directly comparable.

#ifndef AC3_ANALYSIS_LATENCY_MODEL_H_
#define AC3_ANALYSIS_LATENCY_MODEL_H_

#include <cstdint>

#include "src/common/sim_time.h"

namespace ac3::analysis {

/// Herlihy single-leader latency in Δ units: 2 · Diam(D).
uint32_t HerlihyLatencyDeltas(uint32_t diameter);

/// AC3WN latency in Δ units: a constant 4, independent of the graph.
uint32_t Ac3wnLatencyDeltas();

/// Absolute latencies for a concrete Δ.
Duration HerlihyLatency(uint32_t diameter, Duration delta);
Duration Ac3wnLatency(Duration delta);

/// The diameter beyond which AC3WN is strictly faster (Figure 10's
/// crossover): 2·Diam > 4 ⇔ Diam > 2, so every Diam ≥ 3 favours AC3WN and
/// Diam = 2 ties.
uint32_t CrossoverDiameter();

}  // namespace ac3::analysis

#endif  // AC3_ANALYSIS_LATENCY_MODEL_H_
