#include "src/analysis/witness_selection.h"

#include <algorithm>
#include <cmath>

namespace ac3::analysis {

double RequiredDepthBound(double asset_value_usd, double blocks_per_hour,
                          double attack_cost_per_hour_usd) {
  if (attack_cost_per_hour_usd <= 0.0) return INFINITY;
  return asset_value_usd * blocks_per_hour / attack_cost_per_hour_usd;
}

uint32_t MinimumSafeDepth(double asset_value_usd, double blocks_per_hour,
                          double attack_cost_per_hour_usd) {
  const double bound = RequiredDepthBound(asset_value_usd, blocks_per_hour,
                                          attack_cost_per_hour_usd);
  // Strict inequality: on an integral bound the next integer is required.
  double next = std::floor(bound) + 1.0;
  if (next < 1.0) next = 1.0;
  return static_cast<uint32_t>(next);
}

double AttackCostForDepth(uint32_t depth, double blocks_per_hour,
                          double attack_cost_per_hour_usd) {
  if (blocks_per_hour <= 0.0) return INFINITY;
  return static_cast<double>(depth) * attack_cost_per_hour_usd /
         blocks_per_hour;
}

bool DepthDisincentivizesAttack(uint32_t depth, double asset_value_usd,
                                double blocks_per_hour,
                                double attack_cost_per_hour_usd) {
  return AttackCostForDepth(depth, blocks_per_hour,
                            attack_cost_per_hour_usd) > asset_value_usd;
}

double ForkCatchUpProbability(double attacker_fraction, uint32_t depth) {
  if (attacker_fraction <= 0.0) return 0.0;
  if (attacker_fraction >= 0.5) return 1.0;
  const double ratio = attacker_fraction / (1.0 - attacker_fraction);
  return std::pow(ratio, static_cast<double>(depth));
}

std::vector<WitnessChoice> RankWitnessNetworks(
    const std::vector<chain::ChainParams>& candidates,
    double asset_value_usd) {
  std::vector<WitnessChoice> out;
  out.reserve(candidates.size());
  for (const chain::ChainParams& params : candidates) {
    WitnessChoice choice;
    choice.chain_name = params.name;
    choice.required_depth =
        MinimumSafeDepth(asset_value_usd, params.real_blocks_per_hour,
                         params.attack_cost_per_hour_usd);
    choice.finality_hours =
        static_cast<double>(choice.required_depth) /
        params.real_blocks_per_hour;
    choice.attack_cost_usd =
        AttackCostForDepth(choice.required_depth, params.real_blocks_per_hour,
                           params.attack_cost_per_hour_usd);
    out.push_back(std::move(choice));
  }
  std::sort(out.begin(), out.end(),
            [](const WitnessChoice& a, const WitnessChoice& b) {
              return a.finality_hours < b.finality_hours;
            });
  return out;
}

}  // namespace ac3::analysis
