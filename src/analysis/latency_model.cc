#include "src/analysis/latency_model.h"

namespace ac3::analysis {

uint32_t HerlihyLatencyDeltas(uint32_t diameter) { return 2 * diameter; }

uint32_t Ac3wnLatencyDeltas() { return 4; }

Duration HerlihyLatency(uint32_t diameter, Duration delta) {
  return static_cast<Duration>(HerlihyLatencyDeltas(diameter)) * delta;
}

Duration Ac3wnLatency(Duration delta) {
  return static_cast<Duration>(Ac3wnLatencyDeltas()) * delta;
}

uint32_t CrossoverDiameter() { return 2; }

}  // namespace ac3::analysis
