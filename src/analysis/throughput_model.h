// Section 6.4: AC2T throughput composition.
//
// "For an AC2T that spans multiple blockchains, the throughput is bounded
//  by the slowest involved blockchain in the AC2T including the witness
//  network: min(tps_i, tps_j, ..., tps_n, tps_w)."

#ifndef AC3_ANALYSIS_THROUGHPUT_MODEL_H_
#define AC3_ANALYSIS_THROUGHPUT_MODEL_H_

#include <string>
#include <vector>

#include "src/chain/params.h"

namespace ac3::analysis {

/// min over the involved chains' tps; 0 for an empty set.
double CompositeThroughput(const std::vector<double>& involved_tps);

/// Convenience over chain parameter presets: asset chains plus the witness.
double Ac2tThroughput(const std::vector<chain::ChainParams>& asset_chains,
                      const chain::ChainParams& witness);

/// Section 6.4's guidance: the involved chain with the highest tps — picking
/// the witness from the involved set never lowers the composite throughput.
const chain::ChainParams& BestWitnessAmongInvolved(
    const std::vector<chain::ChainParams>& involved);

/// One row of Table 1.
struct ThroughputRow {
  std::string name;
  double tps = 0.0;
};

/// Table 1: the top-4 permissionless cryptocurrencies by market cap with
/// the paper's throughput figures (Bitcoin 7, Ethereum 25, Litecoin 56,
/// Bitcoin Cash 61).
std::vector<ThroughputRow> Table1Rows();

}  // namespace ac3::analysis

#endif  // AC3_ANALYSIS_THROUGHPUT_MODEL_H_
