// Section 6.2 closed-form monetary-cost models.
//
// "The overall AC2T fee of Herlihy's protocol is N·(fd + ffc) while the
//  overall AC2T fee of the AC3WN protocol is (N+1)·(fd + ffc). ... AC3WN
//  imposes a monetary cost overhead of 1/N the transaction fee of Herlihy's
//  protocol."

#ifndef AC3_ANALYSIS_COST_MODEL_H_
#define AC3_ANALYSIS_COST_MODEL_H_

#include <cstdint>

#include "src/chain/params.h"

namespace ac3::analysis {

/// Herlihy fee: N contracts, each deployed once and settled once.
chain::Amount HerlihyFee(uint32_t n_edges, chain::Amount deploy_fee,
                         chain::Amount call_fee);

/// AC3WN fee: the N asset contracts plus SCw's deployment and one state
/// change.
chain::Amount Ac3wnFee(uint32_t n_edges, chain::Amount deploy_fee,
                       chain::Amount call_fee);

/// The relative overhead of AC3WN over Herlihy: exactly 1/N under equal
/// fees.
double Ac3wnOverheadRatio(uint32_t n_edges);

/// Dollar cost of deploying + driving SCw, the paper's back-of-envelope:
/// `eth_cost_at_300` is the measured cost at a $300/ETH rate (≈$4 for a
/// contract of SCw's size [27]); scaling to `usd_per_ether` reproduces
/// "currently ≈$2 at $140/ETH".
double ScwDollarCost(double eth_cost_at_300, double usd_per_ether);

}  // namespace ac3::analysis

#endif  // AC3_ANALYSIS_COST_MODEL_H_
