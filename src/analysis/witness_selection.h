// Section 6.3: choosing the witness network and the confirmation depth d.
//
// "To prevent possible maliciousness, the cost of running a 51% attack on
//  the witness network for d blocks must be set to exceed the potential
//  gains ... d must be set to achieve the inequality d > Va·dh/Ch."
//
// Also the fork-survival model behind Lemma 5.3's ε: an attacker holding a
// fraction q of the witness network's mining power catches up from d blocks
// behind with probability (q/(1-q))^d (Nakamoto's gambler's-ruin analysis),
// which is the ε the depth-d discipline drives to negligibility.

#ifndef AC3_ANALYSIS_WITNESS_SELECTION_H_
#define AC3_ANALYSIS_WITNESS_SELECTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/chain/params.h"

namespace ac3::analysis {

/// The right-hand side of the paper's inequality: Va·dh/Ch blocks.
double RequiredDepthBound(double asset_value_usd, double blocks_per_hour,
                          double attack_cost_per_hour_usd);

/// The smallest integer d that strictly satisfies d > Va·dh/Ch.
/// Paper example: Va = $1M, Ch = $300K/h, dh = 6/h ⇒ bound 20 ⇒ d = 21.
uint32_t MinimumSafeDepth(double asset_value_usd, double blocks_per_hour,
                          double attack_cost_per_hour_usd);

/// Cost of renting a 51% majority long enough to rewrite d blocks:
/// d·Ch/dh dollars.
double AttackCostForDepth(uint32_t depth, double blocks_per_hour,
                          double attack_cost_per_hour_usd);

/// True when `depth` makes the attack strictly unprofitable for an asset
/// worth `asset_value_usd`.
bool DepthDisincentivizesAttack(uint32_t depth, double asset_value_usd,
                                double blocks_per_hour,
                                double attack_cost_per_hour_usd);

/// Probability that an attacker with mining-power fraction `q` (< 0.5)
/// eventually overtakes an honest lead of `d` blocks: (q/(1-q))^d.
double ForkCatchUpProbability(double attacker_fraction, uint32_t depth);

/// One row of the witness-network comparison: what depth a chain needs for
/// a given asset value and how long that takes to finalize.
struct WitnessChoice {
  std::string chain_name;
  uint32_t required_depth = 0;
  /// Wall-clock until the decision is buried: required_depth / dh hours.
  double finality_hours = 0.0;
  double attack_cost_usd = 0.0;
};

/// Evaluates every candidate chain for an AC2T of value `asset_value_usd`,
/// sorted by finality time (the practical selection criterion).
std::vector<WitnessChoice> RankWitnessNetworks(
    const std::vector<chain::ChainParams>& candidates,
    double asset_value_usd);

}  // namespace ac3::analysis

#endif  // AC3_ANALYSIS_WITNESS_SELECTION_H_
