// Priority event queue for the discrete-event simulator.
//
// Events are ordered by (time, insertion sequence) so simultaneous events
// run in deterministic FIFO order — a prerequisite for reproducible runs.

#ifndef AC3_SIM_EVENT_QUEUE_H_
#define AC3_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <vector>

#include "src/common/sim_time.h"

namespace ac3::sim {

/// Cancellation handle for a scheduled event. Cheap to copy; cancelling an
/// already-fired event is a no-op.
class EventHandle {
 public:
  EventHandle() = default;
  explicit EventHandle(std::shared_ptr<bool> cancelled)
      : cancelled_(std::move(cancelled)) {}

  /// Prevents the event from firing (if it has not fired yet).
  void Cancel() {
    if (cancelled_) *cancelled_ = true;
  }
  bool valid() const { return cancelled_ != nullptr; }

 private:
  std::shared_ptr<bool> cancelled_;
};

/// Min-heap of timestamped callbacks.
class EventQueue {
 public:
  /// Enqueues `fn` to run at absolute time `at`.
  EventHandle Push(TimePoint at, std::function<void()> fn);

  /// True when no events remain (cancelled events may still occupy slots
  /// until popped).
  bool Empty() const { return heap_.empty(); }
  size_t Size() const { return heap_.size(); }

  /// Time of the earliest live (non-cancelled) event; kTimeInfinity when
  /// empty. Discards cancelled events from the top as a side effect.
  TimePoint NextTime();

  /// A popped event ready to execute.
  struct Popped {
    TimePoint at;
    std::function<void()> fn;
  };

  /// Pops the earliest live event WITHOUT running it, so the caller can
  /// advance the clock first. Returns nullopt when empty.
  std::optional<Popped> PopNext();

 private:
  struct Event {
    TimePoint at;
    uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace ac3::sim

#endif  // AC3_SIM_EVENT_QUEUE_H_
