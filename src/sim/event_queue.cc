#include "src/sim/event_queue.h"

namespace ac3::sim {

EventHandle EventQueue::Push(TimePoint at, std::function<void()> fn) {
  auto cancelled = std::make_shared<bool>(false);
  heap_.push(Event{at, next_seq_++, std::move(fn), cancelled});
  return EventHandle(cancelled);
}

TimePoint EventQueue::NextTime() {
  while (!heap_.empty() && *heap_.top().cancelled) heap_.pop();
  return heap_.empty() ? kTimeInfinity : heap_.top().at;
}

std::optional<EventQueue::Popped> EventQueue::PopNext() {
  while (!heap_.empty()) {
    Event event = heap_.top();
    heap_.pop();
    if (*event.cancelled) continue;
    return Popped{event.at, std::move(event.fn)};
  }
  return std::nullopt;
}

}  // namespace ac3::sim
