// Open-world traffic generator: deterministic, replayable swap workloads
// at millions-of-accounts scale.
//
// The paper's experiments (Section 6) drive chains with synthetic swap
// traffic; this module is the open-loop ("open world") version of that
// harness: arrivals come from a stochastic process that does not wait for
// inclusion — exactly how real users hit a public mempool. Three knobs
// shape the traffic:
//
//  * Arrival process — Poisson (memoryless, `arrivals_per_sec`) or bursty
//    (an on/off modulated Poisson process: exponential on/off phase
//    durations, with the on-phase rate multiplied by `burst_multiplier`).
//  * Account popularity — swap participants are drawn from a configurable
//    universe (millions of keys) with Zipf-distributed popularity, so a
//    few hot accounts dominate while the long tail still materializes.
//    Wallet state is created lazily on first touch: a universe of 10M
//    accounts costs memory only for the accounts traffic actually hits.
//  * Fee pressure — per-chain fee floors plus a uniform spread, so
//    cross-chain legs compete for block space at different price points.
//
// Every stochastic choice draws from forked common::Rng streams seeded by
// the constructor, so a (config, seed) pair replays bit-for-bit: same
// arrival times, same participants, same transaction bytes, same ids.
//
// Emitted transactions are fully valid signed transfers: each account's
// spendable output is tracked through the emission sequence (funding
// grants from a per-chain faucet are interleaved automatically), so a
// chain that includes the batch FIFO executes every leg successfully.

#ifndef AC3_SIM_WORKLOAD_H_
#define AC3_SIM_WORKLOAD_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/chain/transaction.h"
#include "src/common/random.h"
#include "src/common/sim_time.h"
#include "src/crypto/schnorr.h"

namespace ac3::sim {

/// Arrival process shape.
enum class ArrivalProcess : uint8_t {
  kPoisson = 0,  ///< Memoryless arrivals at `arrivals_per_sec`.
  kBursty = 1,   ///< On/off modulated Poisson (see WorkloadConfig).
};

struct WorkloadConfig {
  /// Number of chains legs are spread over. A swap picks two distinct
  /// chains when >= 2; a single-chain config degrades to plain transfers.
  size_t chains = 2;
  /// Account universe size (keys exist implicitly; wallets materialize
  /// lazily on first touch). Millions are cheap — see the header comment.
  uint64_t accounts = 1'000'000;
  /// Zipf exponent for participant popularity (s = 0 is uniform; s
  /// around 1 is the classic heavy tail).
  double zipf_s = 1.1;

  /// Mean swap arrivals per simulated second (both processes).
  double arrivals_per_sec = 200.0;
  ArrivalProcess process = ArrivalProcess::kPoisson;
  /// Bursty process: mean on/off phase durations (simulated ms) and the
  /// rate multiplier applied during on phases. Off phases emit nothing,
  /// so the long-run average rate is
  ///   arrivals_per_sec * burst_multiplier * on / (on + off).
  double burst_on_mean_ms = 2'000.0;
  double burst_off_mean_ms = 6'000.0;
  double burst_multiplier = 4.0;

  /// Per-chain fee pressure: chain c's floor is
  /// `fee_floor + c * fee_chain_step`, and each transaction adds a
  /// uniform draw in [0, fee_spread].
  chain::Amount fee_floor = 1;
  chain::Amount fee_chain_step = 1;
  chain::Amount fee_spread = 4;

  /// Value moved by each swap leg.
  chain::Amount swap_amount = 5;
  /// Faucet grant size; a grant funds grant_amount / (swap_amount + max
  /// fee) legs before the account needs re-funding.
  chain::Amount grant_amount = 10'000;
  /// Genesis faucet outputs per chain. More lanes shorten the
  /// faucet-change dependency chains threaded through funding bursts.
  size_t faucet_lanes = 64;
  /// Value of each genesis faucet output.
  chain::Amount faucet_lane_value = 1'000'000'000'000ULL;

  /// Base for deterministic key derivation (account k on any chain signs
  /// with KeyPair::FromSeed(key_seed_base + 1 + k); the faucet uses
  /// key_seed_base itself).
  uint64_t key_seed_base = 0x5eed'0000'0000'0000ULL;
};

/// One emitted transaction with its arrival timestamp.
struct GeneratedTx {
  TimePoint arrival = 0;
  /// Index into the generator's chain slots (not the bound ChainId).
  size_t chain = 0;
  chain::Transaction tx;
};

/// Book-keeping for one generated swap: which two legs realize it.
struct SwapRecord {
  uint64_t swap_index = 0;
  TimePoint arrival = 0;
  size_t chain_a = 0;
  size_t chain_b = 0;
  crypto::Hash256 leg_a_id;
  crypto::Hash256 leg_b_id;
};

struct WorkloadBatch {
  /// All transactions (funding grants + swap legs) with arrival <= the
  /// NextBatch horizon, in arrival order. Per-chain sub-sequences are
  /// arrival-monotone, so Mempool::SubmitBatch takes its fast path.
  std::vector<GeneratedTx> txs;
  std::vector<SwapRecord> swaps;
};

/// Deterministic open-loop generator. See the header comment.
///
/// Usage:
///   WorkloadGenerator gen(config, seed);
///   for each chain c: create Blockchain with gen.GenesisAllocations(c),
///                     then gen.BindChain(c, chain->id(), chain->genesis_tx());
///   loop: WorkloadBatch batch = gen.NextBatch(horizon);
class WorkloadGenerator {
 public:
  WorkloadGenerator(WorkloadConfig config, uint64_t seed);

  const WorkloadConfig& config() const { return config_; }

  /// Faucet allocations for chain slot `chain` — pass as the Blockchain
  /// genesis allocations. Identical for every slot (faucet_lanes outputs
  /// of faucet_lane_value owned by the faucet key).
  std::vector<chain::TxOutput> GenesisAllocations(size_t chain) const;

  /// Binds chain slot `chain` to a live chain: records the ChainId
  /// stamped into generated transactions and the genesis transaction
  /// whose outputs are the faucet lanes. Must be called for every slot
  /// before the first NextBatch.
  void BindChain(size_t chain, chain::ChainId chain_id,
                 const chain::Transaction& genesis_tx);

  /// Emits every arrival with timestamp <= `until` (advancing the
  /// internal arrival clock), building funding grants and signed swap
  /// legs. Repeated calls with increasing horizons stream the same
  /// sequence a single big call would produce.
  WorkloadBatch NextBatch(TimePoint until);

  /// Swaps emitted so far.
  uint64_t swaps_generated() const { return swaps_generated_; }

  /// Closed on-phase windows [start, end) the bursty process has
  /// produced so far (empty for kPoisson) — duty-cycle test hook.
  const std::vector<std::pair<TimePoint, TimePoint>>& burst_windows() const {
    return burst_windows_;
  }

  /// Draws one Zipf(s) rank in [0, accounts) — exposed for distribution
  /// tests; NextBatch uses exactly this.
  uint64_t SampleZipf(Rng* rng) const;

 private:
  struct AccountState {
    crypto::KeyPair key;
    chain::OutPoint utxo;   ///< The account's tracked spendable output.
    chain::Amount balance = 0;
    uint64_t nonce = 0;
    bool funded = false;
  };
  struct ChainSlot {
    chain::ChainId chain_id = 0;
    bool bound = false;
    /// Faucet lane outputs (rotating change chain per lane).
    std::vector<chain::OutPoint> faucet_utxos;
    std::vector<chain::Amount> faucet_values;
    uint64_t faucet_nonce = 0;
    size_t next_lane = 0;
    /// Lazily materialized wallets, by account index.
    std::unordered_map<uint64_t, AccountState> accounts;
  };

  /// Advances the arrival clock by one inter-arrival draw (handling
  /// bursty phase boundaries); returns the next arrival instant.
  double NextArrival();

  /// Materializes (if needed) account `index` on `slot`, emitting a
  /// faucet grant into `out` when the balance cannot cover a leg.
  AccountState* EnsureFunded(ChainSlot* slot, size_t chain, uint64_t index,
                             TimePoint arrival, WorkloadBatch* out);

  /// Builds + signs one spend of `payer`'s tracked output: `amount` to
  /// `payee`, change (minus fee) back to the payer.
  chain::Transaction BuildLeg(ChainSlot* slot, AccountState* payer,
                              const crypto::PublicKey& payee,
                              chain::Amount amount, chain::Amount fee);

  chain::Amount DrawFee(size_t chain);

  WorkloadConfig config_;
  crypto::KeyPair faucet_key_;
  Rng arrival_rng_;
  Rng entity_rng_;
  std::vector<ChainSlot> slots_;
  double clock_ms_ = 0.0;  ///< Arrival clock (continuous, simulated ms).
  /// Arrival drawn past a NextBatch horizon, held for the next call so
  /// horizon partitioning never changes the emitted stream.
  double pending_arrival_ms_ = -1.0;
  // Bursty process state.
  bool burst_on_ = false;
  double phase_end_ms_ = 0.0;
  double current_on_start_ms_ = 0.0;
  std::vector<std::pair<TimePoint, TimePoint>> burst_windows_;
  uint64_t swaps_generated_ = 0;
  /// Zipf normalization is implicit in the inverse-CDF approximation; the
  /// cached powers make SampleZipf O(1).
  double zipf_q_ = 0.0;  ///< accounts^(1 - s) (s != 1 branch).
  double zipf_log_n_ = 0.0;
};

}  // namespace ac3::sim

#endif  // AC3_SIM_WORKLOAD_H_
