// The discrete-event simulation kernel.
//
// A Simulation owns the virtual clock and the event queue. Everything in
// the system — miners, participants, witnesses, the network — advances by
// scheduling callbacks. The kernel is single-threaded and deterministic:
// given the same seed and the same schedule of calls, a run is reproducible
// bit-for-bit (DESIGN.md, design decision 3).

#ifndef AC3_SIM_SIMULATION_H_
#define AC3_SIM_SIMULATION_H_

#include <functional>

#include "src/common/random.h"
#include "src/common/sim_time.h"
#include "src/common/status.h"
#include "src/sim/event_queue.h"

namespace ac3::sim {

class Simulation {
 public:
  /// `seed` drives every random draw in the run.
  explicit Simulation(uint64_t seed) : rng_(seed) {}

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current virtual time.
  TimePoint Now() const { return now_; }

  /// Root RNG; subsystems should Fork() their own stream from it.
  Rng* rng() { return &rng_; }

  /// Schedules `fn` to run `delay` ms from now (delay >= 0).
  EventHandle After(Duration delay, std::function<void()> fn);

  /// Schedules `fn` at absolute time `at` (>= Now()).
  EventHandle At(TimePoint at, std::function<void()> fn);

  /// Runs events until the queue drains or `deadline` is passed. Events at
  /// exactly `deadline` still run. Returns the final virtual time.
  TimePoint RunUntil(TimePoint deadline);

  /// Runs until the queue is empty (use with care: recurring timers never
  /// drain; prefer RunUntil).
  TimePoint RunToCompletion();

  /// Runs until `predicate()` becomes true (checked after every event) or
  /// `deadline` passes. Returns OK if the predicate fired.
  Status RunUntilCondition(const std::function<bool()>& predicate,
                           TimePoint deadline);

  /// Number of events executed so far (for tests / reporting).
  uint64_t events_executed() const { return events_executed_; }

 private:
  /// Executes the next event (advancing the clock first). False when empty.
  bool Step();

  EventQueue queue_;
  TimePoint now_ = kTimeZero;
  Rng rng_;
  uint64_t events_executed_ = 0;
};

}  // namespace ac3::sim

#endif  // AC3_SIM_SIMULATION_H_
