// Simulated message-passing network with latency, partitions, and crashes.
//
// The paper targets "asynchronous environments where crash failures and
// network delays are the norm" (Section 1). This model provides exactly the
// failure vocabulary the evaluation needs:
//   * per-message latency  = base + jitter (deterministic from the run RNG),
//   * node crashes         = a node neither receives messages nor runs its
//                            own scheduled actions while down,
//   * network partitions   = messages between different partition groups
//                            are dropped at delivery time.
//
// Delivery is "fire a callback at the receiver" — since everything lives in
// one process, a message *is* its handler closure. Protocol engines react
// to deliveries, chain events, and the connectivity subscriptions below,
// retrying on timers as real blockchain clients do.

#ifndef AC3_SIM_NETWORK_H_
#define AC3_SIM_NETWORK_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/sim_time.h"
#include "src/common/status.h"
#include "src/sim/simulation.h"

namespace ac3::proto {
struct Message;  // src/protocols/messages.h — the typed envelope.
}  // namespace ac3::proto

namespace ac3::sim {

/// Identifies an endpoint (participant, miner, witness service).
using NodeId = uint32_t;

/// Latency model parameters.
struct LatencyModel {
  Duration base = Milliseconds(50);
  Duration jitter = Milliseconds(50);  ///< Uniform extra in [0, jitter].
};

/// Per-message fault injection for the typed SendMessage path. All draws
/// come from the network's own forked run-RNG stream, and every draw is
/// gated on its knob being active — with the model at its all-zero default
/// the typed path consumes the exact RNG sequence of the closure Send
/// oracle, which is how the golden fingerprints certify the message-layer
/// migration. The closure Send path is never fault-injected.
struct MessageFaults {
  double drop_prob = 0.0;       ///< P(a delivery copy is silently lost).
  double duplicate_prob = 0.0;  ///< P(one extra copy is delivered).
  Duration max_extra_delay = 0; ///< Uniform extra latency in [0, max].
};

/// Per-node message/byte counters for the typed SendMessage path. Sent is
/// charged to the sender at send time; delivered and dropped are charged
/// to the receiver at (non-)delivery — a fault-dropped or crash-dropped
/// message counts against the node that never saw it.
struct NodeTraffic {
  uint64_t messages_sent = 0;       ///< Envelopes handed to the network.
  uint64_t bytes_sent = 0;          ///< Sum of their EncodedSize().
  uint64_t messages_delivered = 0;  ///< Copies whose handler ran.
  uint64_t bytes_delivered = 0;     ///< Sum of delivered EncodedSize().
  uint64_t messages_dropped = 0;    ///< Copies lost (fault/crash/partition).
};

class Network {
 public:
  /// The network draws jitter from its own forked stream of `sim`'s RNG.
  Network(Simulation* sim, LatencyModel latency);

  /// Registers a node; returns its id. `label` is for logs only.
  NodeId AddNode(const std::string& label);

  size_t node_count() const { return nodes_.size(); }
  const std::string& label(NodeId id) const { return nodes_.at(id).label; }

  // ------------------------------------------------------------ liveness

  /// Marks a node crashed: it drops incoming messages and IsUp() reports
  /// false (actors must consult IsUp before acting — see FailureInjector).
  void Crash(NodeId id);
  /// Brings a crashed node back.
  void Recover(NodeId id);
  bool IsUp(NodeId id) const;

  // ---------------------------------------------------------- partitions

  /// Puts `id` into partition `group`. Nodes in different groups cannot
  /// exchange messages. Default group is 0 (fully connected).
  void SetPartition(NodeId id, uint32_t group);
  /// Restores full connectivity.
  void HealPartitions();
  uint32_t partition(NodeId id) const;

  // ------------------------------------------------------------- sending

  /// Sends a message from `from` to `to`; `on_deliver` runs at the receiver
  /// after the sampled latency, unless at delivery time the receiver is
  /// crashed or partitioned away from the sender (then the message is
  /// silently dropped, and `dropped_count` increments).
  void Send(NodeId from, NodeId to, std::function<void()> on_deliver);

  /// Broadcast to every other node (gossip primitive used by miners).
  void Broadcast(NodeId from, const std::function<void(NodeId)>& on_deliver);

  // ------------------------------------------------------ typed messages

  /// Delivery callback of the typed message path.
  using MessageHandler = std::function<void(const proto::Message&)>;

  /// Typed counterpart of Send: routes `msg` from msg.sender to
  /// msg.receiver, runs `handler(msg)` at the receiver after the sampled
  /// latency, and applies the armed per-message fault model (drop,
  /// duplication, bounded extra delay — see MessageFaults). Liveness and
  /// partition membership are still evaluated at delivery time, exactly
  /// like the closure path. Per-node traffic counters are updated on both
  /// ends.
  void SendMessage(const proto::Message& msg, MessageHandler handler);

  /// Arms (or clears, with the default) the per-message fault model.
  void set_message_faults(const MessageFaults& faults) { faults_ = faults; }
  const MessageFaults& message_faults() const { return faults_; }

  /// Typed-path traffic counters of `id` (zero until it sends/receives).
  const NodeTraffic& traffic(NodeId id) const { return traffic_.at(id); }

  /// Samples one latency value (exposed for tests).
  Duration SampleLatency();

  uint64_t delivered_count() const { return delivered_count_; }
  uint64_t dropped_count() const { return dropped_count_; }

  // -------------------------------------------- connectivity subscriptions

  /// Fires whenever a node's connectivity changes: crash, recovery, or a
  /// partition move. Reactive protocol engines subscribe so a recovered
  /// participant acts on the state it missed instead of being found by the
  /// next fixed-interval poll. Callbacks run synchronously inside the
  /// mutating call; they must not re-enter the network's mutators.
  using ConnectivityListener = std::function<void(NodeId)>;
  using SubscriptionId = uint64_t;
  SubscriptionId SubscribeConnectivity(ConnectivityListener listener);
  /// Unknown ids are ignored (idempotent).
  void UnsubscribeConnectivity(SubscriptionId id);

 private:
  struct NodeState {
    std::string label;
    bool up = true;
    uint32_t partition = 0;
  };

  void NotifyConnectivity(NodeId id);

  Simulation* sim_;
  LatencyModel latency_;
  Rng rng_;
  MessageFaults faults_;
  std::vector<NodeState> nodes_;
  std::vector<NodeTraffic> traffic_;  ///< Parallel to nodes_.
  std::vector<std::pair<SubscriptionId, ConnectivityListener>>
      connectivity_listeners_;
  SubscriptionId next_subscription_id_ = 1;
  uint64_t delivered_count_ = 0;
  uint64_t dropped_count_ = 0;
};

}  // namespace ac3::sim

#endif  // AC3_SIM_NETWORK_H_
