#include "src/sim/workload.h"

#include <cassert>
#include <cmath>

namespace ac3::sim {

namespace {

TimePoint ToTimePoint(double ms) {
  return static_cast<TimePoint>(std::llround(ms));
}

}  // namespace

WorkloadGenerator::WorkloadGenerator(WorkloadConfig config, uint64_t seed)
    : config_(config),
      faucet_key_(crypto::KeyPair::FromSeed(config.key_seed_base)),
      arrival_rng_(0),
      entity_rng_(0) {
  assert(config_.chains >= 1);
  assert(config_.accounts >= 1);
  assert(config_.arrivals_per_sec > 0.0);
  assert(config_.faucet_lanes >= 1);
  // Independent streams: reshaping the arrival process never perturbs
  // which entities a given swap index picks, and vice versa.
  Rng root(seed);
  arrival_rng_ = root.Fork();
  entity_rng_ = root.Fork();
  slots_.resize(config_.chains);
  // Inverse-CDF constants over ranks [1, N+1] (continuous approximation
  // of the discrete Zipf; see SampleZipf).
  const double n1 = static_cast<double>(config_.accounts) + 1.0;
  zipf_log_n_ = std::log(n1);
  zipf_q_ = std::pow(n1, 1.0 - config_.zipf_s);
  if (config_.process == ArrivalProcess::kBursty) {
    assert(config_.burst_on_mean_ms > 0.0);
    assert(config_.burst_off_mean_ms > 0.0);
    assert(config_.burst_multiplier > 0.0);
    // The traffic opens in an on phase, so short runs see arrivals.
    burst_on_ = true;
    current_on_start_ms_ = 0.0;
    phase_end_ms_ = arrival_rng_.NextExponential(config_.burst_on_mean_ms);
  }
}

std::vector<chain::TxOutput> WorkloadGenerator::GenesisAllocations(
    size_t chain) const {
  assert(chain < slots_.size());
  (void)chain;  // Identical per slot; the parameter documents intent.
  std::vector<chain::TxOutput> allocations(
      config_.faucet_lanes,
      chain::TxOutput{config_.faucet_lane_value, faucet_key_.public_key()});
  return allocations;
}

void WorkloadGenerator::BindChain(size_t chain, chain::ChainId chain_id,
                                  const chain::Transaction& genesis_tx) {
  assert(chain < slots_.size());
  ChainSlot& slot = slots_[chain];
  slot.chain_id = chain_id;
  slot.bound = true;
  const crypto::Hash256 genesis_id = genesis_tx.Id();
  slot.faucet_utxos.clear();
  slot.faucet_values.clear();
  for (uint32_t i = 0; i < genesis_tx.outputs.size(); ++i) {
    if (genesis_tx.outputs[i].owner == faucet_key_.public_key()) {
      slot.faucet_utxos.push_back(chain::OutPoint{genesis_id, i});
      slot.faucet_values.push_back(genesis_tx.outputs[i].value);
    }
  }
  assert(!slot.faucet_utxos.empty());
}

uint64_t WorkloadGenerator::SampleZipf(Rng* rng) const {
  const uint64_t n = config_.accounts;
  if (n <= 1) return 0;
  const double u = rng->NextDouble();
  const double s = config_.zipf_s;
  double x;  // Continuous rank in [1, N+1).
  if (s <= 0.0) {
    x = 1.0 + u * static_cast<double>(n);
  } else if (std::abs(s - 1.0) < 1e-9) {
    // s = 1: F(x) = ln(x) / ln(N+1).
    x = std::exp(u * zipf_log_n_);
  } else {
    // F(x) = (x^(1-s) - 1) / ((N+1)^(1-s) - 1).
    x = std::pow(u * (zipf_q_ - 1.0) + 1.0, 1.0 / (1.0 - s));
  }
  uint64_t rank = static_cast<uint64_t>(x) - 1;
  if (rank >= n) rank = n - 1;
  return rank;
}

double WorkloadGenerator::NextArrival() {
  const double base_rate_per_ms = config_.arrivals_per_sec / 1000.0;
  if (config_.process == ArrivalProcess::kPoisson) {
    clock_ms_ += arrival_rng_.NextExponential(1.0 / base_rate_per_ms);
    return clock_ms_;
  }
  // Bursty: a Poisson process at multiplier * rate gated to on phases.
  // Discarding a draw that crosses the phase end is exact (the process is
  // memoryless), so phase boundaries never bias inter-arrival spacing.
  const double on_mean_ms =
      1.0 / (base_rate_per_ms * config_.burst_multiplier);
  while (true) {
    if (burst_on_) {
      const double dt = arrival_rng_.NextExponential(on_mean_ms);
      if (clock_ms_ + dt <= phase_end_ms_) {
        clock_ms_ += dt;
        return clock_ms_;
      }
      clock_ms_ = phase_end_ms_;
      burst_windows_.emplace_back(ToTimePoint(current_on_start_ms_),
                                  ToTimePoint(phase_end_ms_));
      burst_on_ = false;
      phase_end_ms_ =
          clock_ms_ + arrival_rng_.NextExponential(config_.burst_off_mean_ms);
    } else {
      clock_ms_ = phase_end_ms_;
      burst_on_ = true;
      current_on_start_ms_ = clock_ms_;
      phase_end_ms_ =
          clock_ms_ + arrival_rng_.NextExponential(config_.burst_on_mean_ms);
    }
  }
}

chain::Amount WorkloadGenerator::DrawFee(size_t chain) {
  const chain::Amount floor =
      config_.fee_floor + static_cast<chain::Amount>(chain) *
                              config_.fee_chain_step;
  return floor + entity_rng_.NextBelow(config_.fee_spread + 1);
}

WorkloadGenerator::AccountState* WorkloadGenerator::EnsureFunded(
    ChainSlot* slot, size_t chain, uint64_t index, TimePoint arrival,
    WorkloadBatch* out) {
  auto it = slot->accounts.find(index);
  if (it == slot->accounts.end()) {
    // Lazy materialization: the key exists implicitly for every index in
    // the universe; wallet state is allocated only on first touch.
    it = slot->accounts
             .emplace(index,
                      AccountState{crypto::KeyPair::FromSeed(
                                       config_.key_seed_base + 1 + index),
                                   chain::OutPoint{}, 0, 0, false})
             .first;
  }
  AccountState* account = &it->second;
  // A leg needs swap_amount + fee and at least 1 unit of change (so the
  // tracked output never degenerates to zero value).
  const chain::Amount worst_fee = config_.fee_floor +
                                  static_cast<chain::Amount>(chain) *
                                      config_.fee_chain_step +
                                  config_.fee_spread;
  const chain::Amount min_balance = config_.swap_amount + worst_fee + 1;
  if (account->funded && account->balance >= min_balance) return account;

  // Faucet grant. Lanes rotate so back-to-back grants chain off distinct
  // change outputs instead of one serial dependency string.
  const size_t lane = slot->next_lane;
  slot->next_lane = (slot->next_lane + 1) % slot->faucet_utxos.size();
  const chain::Amount fee = DrawFee(chain);
  const chain::Amount lane_value = slot->faucet_values[lane];
  assert(lane_value >= config_.grant_amount + fee + 1);

  chain::Transaction grant;
  grant.type = chain::TxType::kTransfer;
  grant.chain_id = slot->chain_id;
  grant.inputs.push_back(slot->faucet_utxos[lane]);
  grant.outputs.push_back(
      chain::TxOutput{config_.grant_amount, account->key.public_key()});
  grant.outputs.push_back(chain::TxOutput{lane_value - config_.grant_amount -
                                              fee,
                                          faucet_key_.public_key()});
  grant.fee = fee;
  grant.nonce = slot->faucet_nonce++;
  grant.SignWith(faucet_key_);
  const crypto::Hash256 grant_id = grant.Id();
  slot->faucet_utxos[lane] = chain::OutPoint{grant_id, 1};
  slot->faucet_values[lane] = lane_value - config_.grant_amount - fee;
  // Any residual balance on a previously tracked output is abandoned as
  // dust — the harness tracks one spendable output per (account, chain).
  account->utxo = chain::OutPoint{grant_id, 0};
  account->balance = config_.grant_amount;
  account->funded = true;
  out->txs.push_back(GeneratedTx{arrival, chain, std::move(grant)});
  return account;
}

chain::Transaction WorkloadGenerator::BuildLeg(ChainSlot* slot,
                                               AccountState* payer,
                                               const crypto::PublicKey& payee,
                                               chain::Amount amount,
                                               chain::Amount fee) {
  assert(payer->balance >= amount + fee + 1);
  chain::Transaction tx;
  tx.type = chain::TxType::kTransfer;
  tx.chain_id = slot->chain_id;
  tx.inputs.push_back(payer->utxo);
  tx.outputs.push_back(chain::TxOutput{amount, payee});
  tx.outputs.push_back(
      chain::TxOutput{payer->balance - amount - fee, payer->key.public_key()});
  tx.fee = fee;
  tx.nonce = payer->nonce++;
  tx.SignWith(payer->key);
  payer->utxo = chain::OutPoint{tx.Id(), 1};
  payer->balance -= amount + fee;
  return tx;
}

WorkloadBatch WorkloadGenerator::NextBatch(TimePoint until) {
  for (const ChainSlot& slot : slots_) {
    assert(slot.bound && "BindChain every slot before NextBatch");
    (void)slot;
  }
  WorkloadBatch batch;
  while (true) {
    if (pending_arrival_ms_ < 0.0) pending_arrival_ms_ = NextArrival();
    const TimePoint arrival = ToTimePoint(pending_arrival_ms_);
    if (arrival > until) break;
    pending_arrival_ms_ = -1.0;

    // Participants: payer u pays payee v on chain_a, v pays u back on
    // chain_b — the two legs of the paper's atomic swap shape, here as
    // raw traffic (protocol contracts are exercised elsewhere).
    const uint64_t u = SampleZipf(&entity_rng_);
    uint64_t v = u;
    if (config_.accounts >= 2) {
      while (v == u) v = SampleZipf(&entity_rng_);
    }
    const size_t chain_a = static_cast<size_t>(
        entity_rng_.NextBelow(static_cast<uint64_t>(config_.chains)));
    const size_t chain_b =
        config_.chains >= 2
            ? (chain_a + 1 +
               static_cast<size_t>(entity_rng_.NextBelow(
                   static_cast<uint64_t>(config_.chains - 1)))) %
                  config_.chains
            : chain_a;

    SwapRecord record;
    record.swap_index = swaps_generated_++;
    record.arrival = arrival;
    record.chain_a = chain_a;
    record.chain_b = chain_b;

    // Leg A: u -> v on chain_a.
    {
      ChainSlot* slot = &slots_[chain_a];
      const chain::Amount fee = DrawFee(chain_a);
      AccountState* payer = EnsureFunded(slot, chain_a, u, arrival, &batch);
      const crypto::PublicKey payee =
          crypto::KeyPair::FromSeed(config_.key_seed_base + 1 + v)
              .public_key();
      chain::Transaction leg =
          BuildLeg(slot, payer, payee, config_.swap_amount, fee);
      record.leg_a_id = leg.Id();
      batch.txs.push_back(GeneratedTx{arrival, chain_a, std::move(leg)});
    }
    // Leg B: v -> u on chain_b.
    {
      ChainSlot* slot = &slots_[chain_b];
      const chain::Amount fee = DrawFee(chain_b);
      AccountState* payer = EnsureFunded(slot, chain_b, v, arrival, &batch);
      const crypto::PublicKey payee =
          crypto::KeyPair::FromSeed(config_.key_seed_base + 1 + u)
              .public_key();
      chain::Transaction leg =
          BuildLeg(slot, payer, payee, config_.swap_amount, fee);
      record.leg_b_id = leg.Id();
      batch.txs.push_back(GeneratedTx{arrival, chain_b, std::move(leg)});
    }
    batch.swaps.push_back(record);
  }
  return batch;
}

}  // namespace ac3::sim
