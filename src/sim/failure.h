// Failure injection: the experiment knob behind the paper's headline claim.
//
// The case against HTLC protocols (Section 1): "if Bob fails to provide s to
// SC1 before t1 expires due to a crash failure or a network partitioning at
// Bob's site, Bob loses his X bitcoins." The injector schedules exactly such
// crash windows and partition windows, and protocol actors consult it (via
// Network::IsUp) before taking any action.

#ifndef AC3_SIM_FAILURE_H_
#define AC3_SIM_FAILURE_H_

#include <vector>

#include "src/common/sim_time.h"
#include "src/sim/network.h"
#include "src/sim/simulation.h"

namespace ac3::sim {

/// One planned crash window for a node.
struct CrashWindow {
  NodeId node = 0;
  TimePoint start = 0;
  /// Exclusive end; kTimeInfinity = never recovers.
  TimePoint end = kTimeInfinity;
};

/// One planned partition window: `node` is isolated in its own group.
struct PartitionWindow {
  NodeId node = 0;
  TimePoint start = 0;
  TimePoint end = kTimeInfinity;
};

/// Schedules crash / recovery and partition / heal events on the network.
class FailureInjector {
 public:
  FailureInjector(Simulation* sim, Network* network)
      : sim_(sim), network_(network) {}

  /// Crashes `node` during [start, end). Recovery is scheduled at `end`
  /// when finite.
  void ScheduleCrash(const CrashWindow& window);

  /// Isolates `node` into its own partition group during [start, end).
  void SchedulePartition(const PartitionWindow& window);

  /// Convenience: crash `node` at `at` for `duration` ms.
  void CrashFor(NodeId node, TimePoint at, Duration duration);

  const std::vector<CrashWindow>& crash_windows() const {
    return crash_windows_;
  }

 private:
  Simulation* sim_;
  Network* network_;
  std::vector<CrashWindow> crash_windows_;
  uint32_t next_partition_group_ = 1;
};

}  // namespace ac3::sim

#endif  // AC3_SIM_FAILURE_H_
