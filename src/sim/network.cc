#include "src/sim/network.h"

#include <cassert>
#include <memory>
#include <utility>

#include "src/common/logging.h"
// Include-only dependency: SendMessage needs the envelope's (header-inline)
// EncodedSize() and the handler's parameter type; no ac3_protocols symbol
// is referenced, so the module link graph gains no sim -> protocols edge.
#include "src/protocols/messages.h"

namespace ac3::sim {

Network::Network(Simulation* sim, LatencyModel latency)
    : sim_(sim), latency_(latency), rng_(sim->rng()->Fork()) {}

NodeId Network::AddNode(const std::string& label) {
  nodes_.push_back(NodeState{label, /*up=*/true, /*partition=*/0});
  traffic_.emplace_back();
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Network::Crash(NodeId id) {
  nodes_.at(id).up = false;
  NotifyConnectivity(id);
}

void Network::Recover(NodeId id) {
  nodes_.at(id).up = true;
  NotifyConnectivity(id);
}

bool Network::IsUp(NodeId id) const { return nodes_.at(id).up; }

void Network::SetPartition(NodeId id, uint32_t group) {
  nodes_.at(id).partition = group;
  NotifyConnectivity(id);
}

void Network::HealPartitions() {
  for (NodeState& node : nodes_) node.partition = 0;
  for (NodeId id = 0; id < nodes_.size(); ++id) NotifyConnectivity(id);
}

Network::SubscriptionId Network::SubscribeConnectivity(
    ConnectivityListener listener) {
  const SubscriptionId id = next_subscription_id_++;
  connectivity_listeners_.emplace_back(id, std::move(listener));
  return id;
}

void Network::UnsubscribeConnectivity(SubscriptionId id) {
  std::erase_if(connectivity_listeners_,
                [id](const auto& entry) { return entry.first == id; });
}

void Network::NotifyConnectivity(NodeId id) {
  // Iterate by index: a listener may subscribe another listener (growing
  // the vector) but unsubscription mid-notification is not supported.
  for (size_t i = 0; i < connectivity_listeners_.size(); ++i) {
    connectivity_listeners_[i].second(id);
  }
}

uint32_t Network::partition(NodeId id) const { return nodes_.at(id).partition; }

Duration Network::SampleLatency() {
  Duration jitter =
      latency_.jitter > 0
          ? static_cast<Duration>(rng_.NextBelow(
                static_cast<uint64_t>(latency_.jitter) + 1))
          : 0;
  return latency_.base + jitter;
}

void Network::Send(NodeId from, NodeId to, std::function<void()> on_deliver) {
  assert(from < nodes_.size() && to < nodes_.size());
  Duration latency = SampleLatency();
  sim_->After(latency, [this, from, to, fn = std::move(on_deliver)]() {
    // Liveness and partition membership are evaluated at *delivery* time:
    // a node that crashes mid-flight still loses the message.
    if (!nodes_[to].up ||
        nodes_[from].partition != nodes_[to].partition) {
      ++dropped_count_;
      AC3_LOG(kDebug) << "drop " << nodes_[from].label << " -> "
                      << nodes_[to].label;
      return;
    }
    ++delivered_count_;
    fn();
  });
}

void Network::SendMessage(const proto::Message& msg, MessageHandler handler) {
  const NodeId from = msg.sender;
  const NodeId to = msg.receiver;
  assert(from < nodes_.size() && to < nodes_.size());
  const uint64_t bytes = msg.EncodedSize();
  traffic_[from].messages_sent += 1;
  traffic_[from].bytes_sent += bytes;

  // Draw order is fixed and every fault draw is gated on its knob, so the
  // all-zero fault model consumes exactly the closure path's RNG sequence
  // (one jitter sample per send) — the migration's determinism contract.
  int copies = 1;
  if (faults_.duplicate_prob > 0 && rng_.NextBool(faults_.duplicate_prob)) {
    copies = 2;
  }
  auto shared = std::make_shared<const proto::Message>(msg);
  for (int copy = 0; copy < copies; ++copy) {
    Duration latency = SampleLatency();
    if (faults_.drop_prob > 0 && rng_.NextBool(faults_.drop_prob)) {
      ++traffic_[to].messages_dropped;
      ++dropped_count_;
      AC3_LOG(kDebug) << "fault-drop " << nodes_[from].label << " -> "
                      << nodes_[to].label;
      continue;
    }
    if (faults_.max_extra_delay > 0) {
      latency += static_cast<Duration>(
          rng_.NextBelow(static_cast<uint64_t>(faults_.max_extra_delay) + 1));
    }
    sim_->After(latency, [this, from, to, bytes, shared, handler]() {
      if (!nodes_[to].up ||
          nodes_[from].partition != nodes_[to].partition) {
        ++traffic_[to].messages_dropped;
        ++dropped_count_;
        AC3_LOG(kDebug) << "drop " << nodes_[from].label << " -> "
                        << nodes_[to].label;
        return;
      }
      ++delivered_count_;
      traffic_[to].messages_delivered += 1;
      traffic_[to].bytes_delivered += bytes;
      handler(*shared);
    });
  }
}

void Network::Broadcast(NodeId from,
                        const std::function<void(NodeId)>& on_deliver) {
  for (NodeId to = 0; to < nodes_.size(); ++to) {
    if (to == from) continue;
    Send(from, to, [on_deliver, to]() { on_deliver(to); });
  }
}

}  // namespace ac3::sim
