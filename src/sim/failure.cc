#include "src/sim/failure.h"

#include "src/common/logging.h"

namespace ac3::sim {

void FailureInjector::ScheduleCrash(const CrashWindow& window) {
  crash_windows_.push_back(window);
  sim_->At(window.start, [this, node = window.node]() {
    AC3_LOG(kInfo) << "crash node " << network_->label(node);
    network_->Crash(node);
  });
  if (window.end != kTimeInfinity) {
    sim_->At(window.end, [this, node = window.node]() {
      AC3_LOG(kInfo) << "recover node " << network_->label(node);
      network_->Recover(node);
    });
  }
}

void FailureInjector::SchedulePartition(const PartitionWindow& window) {
  const uint32_t group = next_partition_group_++;
  sim_->At(window.start, [this, node = window.node, group]() {
    AC3_LOG(kInfo) << "partition node " << network_->label(node);
    network_->SetPartition(node, group);
  });
  if (window.end != kTimeInfinity) {
    sim_->At(window.end, [this, node = window.node]() {
      AC3_LOG(kInfo) << "heal node " << network_->label(node);
      network_->SetPartition(node, 0);
    });
  }
}

void FailureInjector::CrashFor(NodeId node, TimePoint at, Duration duration) {
  ScheduleCrash(CrashWindow{node, at, at + duration});
}

}  // namespace ac3::sim
