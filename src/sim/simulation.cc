#include "src/sim/simulation.h"

#include <cassert>

namespace ac3::sim {

EventHandle Simulation::After(Duration delay, std::function<void()> fn) {
  assert(delay >= 0);
  return At(now_ + delay, std::move(fn));
}

EventHandle Simulation::At(TimePoint at, std::function<void()> fn) {
  assert(at >= now_);
  return queue_.Push(at, std::move(fn));
}

bool Simulation::Step() {
  auto event = queue_.PopNext();
  if (!event.has_value()) return false;
  // Advance the clock BEFORE running the callback, so code inside an event
  // observes Now() == its scheduled time.
  now_ = event->at;
  event->fn();
  ++events_executed_;
  return true;
}

TimePoint Simulation::RunUntil(TimePoint deadline) {
  while (queue_.NextTime() <= deadline) {
    if (!Step()) break;
  }
  if (now_ < deadline) now_ = deadline;
  return now_;
}

TimePoint Simulation::RunToCompletion() {
  while (Step()) {
  }
  return now_;
}

Status Simulation::RunUntilCondition(const std::function<bool()>& predicate,
                                     TimePoint deadline) {
  if (predicate()) return Status::OK();
  while (queue_.NextTime() <= deadline) {
    if (!Step()) break;
    if (predicate()) return Status::OK();
  }
  if (now_ < deadline) now_ = deadline;
  return Status::Unavailable("condition not reached before deadline");
}

}  // namespace ac3::sim
