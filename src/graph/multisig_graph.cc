#include "src/graph/multisig_graph.h"

namespace ac3::graph {

Result<crypto::Multisignature> SignGraph(
    const Ac2tGraph& graph, const std::vector<crypto::KeyPair>& signers) {
  AC3_RETURN_IF_ERROR(graph.Validate());
  if (signers.size() != graph.participant_count()) {
    return Status::InvalidArgument("every participant must sign ms(D)");
  }
  crypto::Multisignature ms(graph.Encode());
  for (const crypto::KeyPair& key : signers) {
    AC3_RETURN_IF_ERROR(ms.AddSignature(key));
  }
  if (!ms.VerifyAll(graph.participants())) {
    return Status::VerificationFailed(
        "signers do not match the graph participants");
  }
  return ms;
}

bool VerifyGraphMultisig(const Ac2tGraph& graph,
                         const crypto::Multisignature& ms) {
  if (ms.message() != graph.Encode()) return false;
  return ms.VerifyAll(graph.participants());
}

}  // namespace ac3::graph
