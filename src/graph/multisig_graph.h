// ms(D): the multisigned AC2T graph (Section 4, Equation 1).
//
// "For every AC2T, a directed graph D is constructed at some timestamp t
//  and multisigned by all the participants, generating a graph
//  multisignature ms(D). Any signature order indicates that all
//  participants agree on the graph D at timestamp t."

#ifndef AC3_GRAPH_MULTISIG_GRAPH_H_
#define AC3_GRAPH_MULTISIG_GRAPH_H_

#include <vector>

#include "src/crypto/multisig.h"
#include "src/graph/ac2t_graph.h"

namespace ac3::graph {

/// Builds ms(D): every key in `signers` signs the canonical encoding of
/// (D, t). `signers` must be exactly the graph's participants (in any
/// order).
Result<crypto::Multisignature> SignGraph(
    const Ac2tGraph& graph, const std::vector<crypto::KeyPair>& signers);

/// Verifies that `ms` is a complete multisignature of `graph` by all its
/// participants and that the signed message is the graph's encoding.
bool VerifyGraphMultisig(const Ac2tGraph& graph,
                         const crypto::Multisignature& ms);

}  // namespace ac3::graph

#endif  // AC3_GRAPH_MULTISIG_GRAPH_H_
