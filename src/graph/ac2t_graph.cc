#include "src/graph/ac2t_graph.h"

#include <algorithm>
#include <deque>
#include <functional>

namespace ac3::graph {

Ac2tGraph::Ac2tGraph(std::vector<crypto::PublicKey> participants,
                     std::vector<Ac2tEdge> edges, TimePoint timestamp)
    : participants_(std::move(participants)),
      edges_(std::move(edges)),
      timestamp_(timestamp) {}

Status Ac2tGraph::Validate() const {
  if (participants_.size() < 2) {
    return Status::InvalidArgument("an AC2T needs at least two participants");
  }
  if (edges_.empty()) {
    return Status::InvalidArgument("an AC2T needs at least one edge");
  }
  for (const Ac2tEdge& e : edges_) {
    if (e.from >= participants_.size() || e.to >= participants_.size()) {
      return Status::OutOfRange("edge endpoint out of range");
    }
    if (e.from == e.to) {
      return Status::InvalidArgument("self transfers are not sub-transactions");
    }
    if (e.amount == 0) {
      return Status::InvalidArgument("edges must transfer a positive asset");
    }
  }
  for (const crypto::PublicKey& pk : participants_) {
    if (!pk.IsValid()) {
      return Status::InvalidArgument("invalid participant key");
    }
  }
  return Status::OK();
}

Bytes Ac2tGraph::Encode() const {
  ByteWriter w;
  w.PutString("ac3/graph");
  w.PutI64(timestamp_);
  w.PutU32(static_cast<uint32_t>(participants_.size()));
  for (const crypto::PublicKey& pk : participants_) w.PutRaw(pk.Encode());
  w.PutU32(static_cast<uint32_t>(edges_.size()));
  for (const Ac2tEdge& e : edges_) {
    w.PutU32(e.from);
    w.PutU32(e.to);
    w.PutU32(e.chain_id);
    w.PutU64(e.amount);
  }
  return w.Take();
}

Result<Ac2tGraph> Ac2tGraph::Decode(const Bytes& encoded) {
  ByteReader r(encoded);
  AC3_ASSIGN_OR_RETURN(std::string magic, r.GetString());
  if (magic != "ac3/graph") {
    return Status::InvalidArgument("not a graph encoding");
  }
  Ac2tGraph graph;
  AC3_ASSIGN_OR_RETURN(graph.timestamp_, r.GetI64());
  AC3_ASSIGN_OR_RETURN(uint32_t n_participants, r.GetU32());
  for (uint32_t i = 0; i < n_participants; ++i) {
    AC3_ASSIGN_OR_RETURN(crypto::PublicKey pk, crypto::PublicKey::Decode(&r));
    graph.participants_.push_back(pk);
  }
  AC3_ASSIGN_OR_RETURN(uint32_t n_edges, r.GetU32());
  for (uint32_t i = 0; i < n_edges; ++i) {
    Ac2tEdge e;
    AC3_ASSIGN_OR_RETURN(e.from, r.GetU32());
    AC3_ASSIGN_OR_RETURN(e.to, r.GetU32());
    AC3_ASSIGN_OR_RETURN(e.chain_id, r.GetU32());
    AC3_ASSIGN_OR_RETURN(e.amount, r.GetU64());
    graph.edges_.push_back(e);
  }
  return graph;
}

std::vector<std::vector<uint32_t>> Ac2tGraph::Adjacency() const {
  std::vector<std::vector<uint32_t>> adj(participants_.size());
  for (const Ac2tEdge& e : edges_) adj[e.from].push_back(e.to);
  return adj;
}

uint32_t Ac2tGraph::Diameter() const {
  const size_t n = participants_.size();
  const auto adj = Adjacency();
  uint32_t diameter = 0;
  constexpr uint32_t kInf = UINT32_MAX;

  for (uint32_t source = 0; source < n; ++source) {
    // BFS distances; dist[source] here means "shortest directed cycle
    // through source" (the paper's 'including itself'), so it starts
    // unknown and is filled in when the BFS returns to the source.
    std::vector<uint32_t> dist(n, kInf);
    std::deque<uint32_t> queue;
    // Seed with the source's out-neighbours at distance 1.
    for (uint32_t next : adj[source]) {
      if (next == source) continue;
      if (dist[next] == kInf) {
        dist[next] = 1;
        queue.push_back(next);
      } else {
        dist[next] = std::min(dist[next], 1u);
      }
    }
    uint32_t cycle = adj[source].empty() ? kInf : kInf;
    while (!queue.empty()) {
      uint32_t u = queue.front();
      queue.pop_front();
      for (uint32_t v : adj[u]) {
        if (v == source) {
          cycle = std::min(cycle, dist[u] + 1);
          continue;
        }
        if (dist[v] == kInf) {
          dist[v] = dist[u] + 1;
          queue.push_back(v);
        }
      }
    }
    for (uint32_t v = 0; v < n; ++v) {
      if (v != source && dist[v] != kInf) diameter = std::max(diameter, dist[v]);
    }
    if (cycle != kInf) diameter = std::max(diameter, cycle);
  }
  return diameter;
}

bool Ac2tGraph::IsCyclic() const {
  const size_t n = participants_.size();
  const auto adj = Adjacency();
  // Colors: 0 = unvisited, 1 = on stack, 2 = done.
  std::vector<int> color(n, 0);
  std::function<bool(uint32_t)> dfs = [&](uint32_t u) -> bool {
    color[u] = 1;
    for (uint32_t v : adj[u]) {
      if (color[v] == 1) return true;
      if (color[v] == 0 && dfs(v)) return true;
    }
    color[u] = 2;
    return false;
  };
  for (uint32_t u = 0; u < n; ++u) {
    if (color[u] == 0 && dfs(u)) return true;
  }
  return false;
}

bool Ac2tGraph::IsConnected() const {
  const size_t n = participants_.size();
  if (n == 0) return true;
  std::vector<std::vector<uint32_t>> undirected(n);
  for (const Ac2tEdge& e : edges_) {
    undirected[e.from].push_back(e.to);
    undirected[e.to].push_back(e.from);
  }
  std::vector<bool> seen(n, false);
  std::deque<uint32_t> queue{0};
  seen[0] = true;
  size_t count = 1;
  while (!queue.empty()) {
    uint32_t u = queue.front();
    queue.pop_front();
    for (uint32_t v : undirected[u]) {
      if (!seen[v]) {
        seen[v] = true;
        ++count;
        queue.push_back(v);
      }
    }
  }
  return count == n;
}

bool Ac2tGraph::AcyclicWithoutVertex(uint32_t leader) const {
  std::vector<Ac2tEdge> remaining;
  for (const Ac2tEdge& e : edges_) {
    if (e.from != leader && e.to != leader) remaining.push_back(e);
  }
  Ac2tGraph reduced(participants_, remaining, timestamp_);
  return !reduced.IsCyclic();
}

std::optional<uint32_t> Ac2tGraph::FindSingleLeader() const {
  for (uint32_t v = 0; v < participants_.size(); ++v) {
    if (AcyclicWithoutVertex(v)) return v;
  }
  return std::nullopt;
}

std::string Ac2tGraph::Describe() const {
  std::string out;
  out += IsConnected() ? "connected" : "disconnected";
  out += IsCyclic() ? ", cyclic" : ", acyclic";
  out += FindSingleLeader().has_value() ? ", single-leader-feasible"
                                        : ", no-single-leader";
  return out;
}

Ac2tGraph MakeTwoPartySwap(const crypto::PublicKey& alice,
                           const crypto::PublicKey& bob,
                           chain::ChainId chain_ab, chain::Amount amount_ab,
                           chain::ChainId chain_ba, chain::Amount amount_ba,
                           TimePoint timestamp) {
  return Ac2tGraph({alice, bob},
                   {Ac2tEdge{0, 1, chain_ab, amount_ab},
                    Ac2tEdge{1, 0, chain_ba, amount_ba}},
                   timestamp);
}

namespace {
chain::ChainId ChainFor(const std::vector<chain::ChainId>& chains, size_t i) {
  return chains[i % chains.size()];
}
}  // namespace

Ac2tGraph MakeRing(const std::vector<crypto::PublicKey>& participants,
                   const std::vector<chain::ChainId>& chains,
                   chain::Amount amount, TimePoint timestamp) {
  std::vector<Ac2tEdge> edges;
  const uint32_t n = static_cast<uint32_t>(participants.size());
  for (uint32_t i = 0; i < n; ++i) {
    edges.push_back(Ac2tEdge{i, (i + 1) % n, ChainFor(chains, i), amount});
  }
  return Ac2tGraph(participants, edges, timestamp);
}

Ac2tGraph MakePath(const std::vector<crypto::PublicKey>& participants,
                   const std::vector<chain::ChainId>& chains,
                   chain::Amount amount, TimePoint timestamp) {
  std::vector<Ac2tEdge> edges;
  const uint32_t n = static_cast<uint32_t>(participants.size());
  for (uint32_t i = 0; i + 1 < n; ++i) {
    edges.push_back(Ac2tEdge{i, i + 1, ChainFor(chains, i), amount});
  }
  return Ac2tGraph(participants, edges, timestamp);
}

Ac2tGraph MakeStar(const std::vector<crypto::PublicKey>& participants,
                   const std::vector<chain::ChainId>& chains,
                   chain::Amount amount, TimePoint timestamp) {
  std::vector<Ac2tEdge> edges;
  const uint32_t n = static_cast<uint32_t>(participants.size());
  for (uint32_t i = 1; i < n; ++i) {
    edges.push_back(Ac2tEdge{0, i, ChainFor(chains, 2 * (i - 1)), amount});
    edges.push_back(Ac2tEdge{i, 0, ChainFor(chains, 2 * (i - 1) + 1), amount});
  }
  return Ac2tGraph(participants, edges, timestamp);
}

Ac2tGraph MakeCompleteDigraph(
    const std::vector<crypto::PublicKey>& participants,
    const std::vector<chain::ChainId>& chains, chain::Amount amount,
    TimePoint timestamp) {
  std::vector<Ac2tEdge> edges;
  const uint32_t n = static_cast<uint32_t>(participants.size());
  size_t chain_cursor = 0;
  for (uint32_t u = 0; u < n; ++u) {
    for (uint32_t v = 0; v < n; ++v) {
      if (u == v) continue;
      edges.push_back(Ac2tEdge{u, v, ChainFor(chains, chain_cursor++), amount});
    }
  }
  return Ac2tGraph(participants, edges, timestamp);
}

Ac2tGraph MakeRandomFeasibleGraph(
    const std::vector<crypto::PublicKey>& participants,
    const std::vector<chain::ChainId>& chains, chain::Amount amount,
    double chord_prob, Rng* rng, TimePoint timestamp) {
  Ac2tGraph ring = MakeRing(participants, chains, amount, timestamp);
  std::vector<Ac2tEdge> edges = ring.edges();
  const uint32_t n = static_cast<uint32_t>(participants.size());
  size_t chain_cursor = edges.size();
  // Forward chords only (u < v, neither incident edge closing a cycle that
  // avoids vertex 0): the subgraph without vertex 0 stays a DAG, so the
  // graph remains single-leader feasible with leader 0 for every draw.
  for (uint32_t u = 1; u < n; ++u) {
    for (uint32_t v = u + 2; v < n; ++v) {
      if (rng->NextBool(chord_prob)) {
        edges.push_back(
            Ac2tEdge{u, v, ChainFor(chains, chain_cursor++), amount});
      }
    }
  }
  return Ac2tGraph(participants, edges, timestamp);
}

Ac2tGraph MakeFigure7aCyclic(
    const std::vector<crypto::PublicKey>& participants,
    const std::vector<chain::ChainId>& chains, chain::Amount amount,
    TimePoint timestamp) {
  std::vector<Ac2tEdge> edges;
  const uint32_t n = static_cast<uint32_t>(participants.size());
  for (uint32_t i = 0; i < n; ++i) {
    const uint32_t j = (i + 1) % n;
    edges.push_back(Ac2tEdge{i, j, ChainFor(chains, 2 * i), amount});
    edges.push_back(Ac2tEdge{j, i, ChainFor(chains, 2 * i + 1), amount});
  }
  return Ac2tGraph(participants, edges, timestamp);
}

Ac2tGraph MakeFigure7bDisconnected(
    const std::vector<crypto::PublicKey>& participants,
    const std::vector<chain::ChainId>& chains, chain::Amount amount,
    TimePoint timestamp) {
  // Pairs (0,1), (2,3), ... each swap in isolation; one atomic AC2T.
  std::vector<Ac2tEdge> edges;
  for (uint32_t i = 0; i + 1 < participants.size(); i += 2) {
    edges.push_back(Ac2tEdge{i, i + 1, ChainFor(chains, i), amount});
    edges.push_back(Ac2tEdge{i + 1, i, ChainFor(chains, i + 1), amount});
  }
  return Ac2tGraph(participants, edges, timestamp);
}

Ac2tGraph MakeRandomGraph(const std::vector<crypto::PublicKey>& participants,
                          const std::vector<chain::ChainId>& chains,
                          chain::Amount amount, double extra_edge_prob,
                          Rng* rng, TimePoint timestamp) {
  // Start from a ring (guaranteed connected), then sprinkle extra edges.
  Ac2tGraph ring = MakeRing(participants, chains, amount, timestamp);
  std::vector<Ac2tEdge> edges = ring.edges();
  const uint32_t n = static_cast<uint32_t>(participants.size());
  size_t chain_cursor = edges.size();
  for (uint32_t u = 0; u < n; ++u) {
    for (uint32_t v = 0; v < n; ++v) {
      if (u == v || (v == (u + 1) % n)) continue;
      if (rng->NextBool(extra_edge_prob)) {
        edges.push_back(
            Ac2tEdge{u, v, ChainFor(chains, chain_cursor++), amount});
      }
    }
  }
  return Ac2tGraph(participants, edges, timestamp);
}

}  // namespace ac3::graph
