// The AC2T transaction graph D = (V, E) — Section 3.
//
// "V represents the participants in AC2T and E represents the
//  sub-transactions. A directed edge e = (u, v) represents a
//  sub-transaction that transfers an asset e.a from a source participant u
//  to a recipient participant v in some blockchain e.BC."
//
// The module also provides the graph-shape analysis behind Section 5.3:
// diameter (the latency driver of Section 6.1), cyclicity, connectivity,
// and the single-leader feasibility check that Nolan's/Herlihy's protocols
// depend on — AC3WN handles any shape; the baselines refuse the Figure 7
// graphs.

#ifndef AC3_GRAPH_AC2T_GRAPH_H_
#define AC3_GRAPH_AC2T_GRAPH_H_

#include <optional>
#include <string>
#include <vector>

#include "src/chain/params.h"
#include "src/common/bytes.h"
#include "src/common/random.h"
#include "src/common/sim_time.h"
#include "src/crypto/schnorr.h"

namespace ac3::graph {

/// One sub-transaction: participant `from` pays `amount` to participant
/// `to` on blockchain `chain_id` (indices into the participant list).
struct Ac2tEdge {
  uint32_t from = 0;
  uint32_t to = 0;
  chain::ChainId chain_id = 0;
  chain::Amount amount = 0;
};

class Ac2tGraph {
 public:
  Ac2tGraph() = default;
  Ac2tGraph(std::vector<crypto::PublicKey> participants,
            std::vector<Ac2tEdge> edges, TimePoint timestamp);

  const std::vector<crypto::PublicKey>& participants() const {
    return participants_;
  }
  const std::vector<Ac2tEdge>& edges() const { return edges_; }
  /// "The timestamp t is important to distinguish between identical AC2Ts
  /// among the same participants."
  TimePoint timestamp() const { return timestamp_; }
  size_t participant_count() const { return participants_.size(); }
  size_t edge_count() const { return edges_.size(); }

  /// Basic well-formedness (indices in range, positive amounts, at least
  /// one edge, no self-loops).
  Status Validate() const;

  /// Canonical encoding of (D, t): the message all participants multisign.
  Bytes Encode() const;
  static Result<Ac2tGraph> Decode(const Bytes& encoded);

  // ------------------------------------------------------- shape analysis

  /// Diam(D): "the length of the longest path from any vertex in D to any
  /// other vertex in D including itself" — max over ordered pairs (u, v)
  /// (u == v meaning the shortest directed cycle through u) of the
  /// shortest-path length, ignoring unreachable pairs. The paper's smallest
  /// swap (two nodes, two edges) has Diam = 2.
  uint32_t Diameter() const;

  /// True when the directed graph contains a cycle.
  bool IsCyclic() const;

  /// True when the underlying undirected graph is connected.
  bool IsConnected() const;

  /// True when removing vertex `leader` leaves an acyclic graph — the
  /// feasibility condition of the single-leader protocols.
  bool AcyclicWithoutVertex(uint32_t leader) const;

  /// Some vertex whose removal leaves the graph acyclic, if any — a valid
  /// single leader for Nolan's / Herlihy's protocol (Section 5.3).
  std::optional<uint32_t> FindSingleLeader() const;

  /// Classification string for reports: "simple", "cyclic",
  /// "disconnected", ...
  std::string Describe() const;

 private:
  std::vector<std::vector<uint32_t>> Adjacency() const;

  std::vector<crypto::PublicKey> participants_;
  std::vector<Ac2tEdge> edges_;
  TimePoint timestamp_ = 0;
};

// --------------------------------------------------------- graph factories

/// Figure 4: Alice pays X on chain 0, Bob pays Y back on chain 1.
Ac2tGraph MakeTwoPartySwap(const crypto::PublicKey& alice,
                           const crypto::PublicKey& bob,
                           chain::ChainId chain_ab, chain::Amount amount_ab,
                           chain::ChainId chain_ba, chain::Amount amount_ba,
                           TimePoint timestamp);

/// A directed ring 0 -> 1 -> ... -> n-1 -> 0 (diameter n); a classic
/// multi-party swap.
Ac2tGraph MakeRing(const std::vector<crypto::PublicKey>& participants,
                   const std::vector<chain::ChainId>& chains,
                   chain::Amount amount, TimePoint timestamp);

/// A directed path 0 -> 1 -> ... -> n-1 (n-1 edges, diameter n-1): a
/// payment chain rather than a cycle — every vertex is a valid single
/// leader, so the HTLC baselines always accept it.
Ac2tGraph MakePath(const std::vector<crypto::PublicKey>& participants,
                   const std::vector<chain::ChainId>& chains,
                   chain::Amount amount, TimePoint timestamp);

/// A star centered on vertex 0: edges 0 -> i and i -> 0 for every leaf i
/// (2(n-1) edges, diameter 2). A hub swapping with n-1 spokes in one
/// AC2T; removing the hub leaves no edges, so the hub is a valid single
/// leader at any size.
Ac2tGraph MakeStar(const std::vector<crypto::PublicKey>& participants,
                   const std::vector<chain::ChainId>& chains,
                   chain::Amount amount, TimePoint timestamp);

/// The complete digraph: every ordered pair (u, v) is a sub-transaction
/// (n(n-1) edges, diameter 1). For n >= 3 removing ANY single vertex
/// still leaves a 2-cycle, so no single-leader protocol can run it —
/// together with the Figure 7 shapes this is the "Herlihy must reject,
/// AC3WN commits" family (Section 5.3).
Ac2tGraph MakeCompleteDigraph(
    const std::vector<crypto::PublicKey>& participants,
    const std::vector<chain::ChainId>& chains, chain::Amount amount,
    TimePoint timestamp);

/// A random *single-leader-feasible* digraph: the directed ring plus
/// random forward chords u -> v (0 < u < v), each kept with probability
/// `chord_prob`. Removing vertex 0 leaves only forward edges — a DAG — so
/// vertex 0 is a valid leader by construction, whatever the draw.
/// Deterministic for a given `rng` state.
Ac2tGraph MakeRandomFeasibleGraph(
    const std::vector<crypto::PublicKey>& participants,
    const std::vector<chain::ChainId>& chains, chain::Amount amount,
    double chord_prob, Rng* rng, TimePoint timestamp);

/// Figure 7(a): a bidirectional ring — cyclic no matter which single vertex
/// is removed, so no single-leader protocol can run it.
Ac2tGraph MakeFigure7aCyclic(const std::vector<crypto::PublicKey>& participants,
                             const std::vector<chain::ChainId>& chains,
                             chain::Amount amount, TimePoint timestamp);

/// Figure 7(b): two independent two-party swaps in one atomic AC2T
/// (disconnected graph).
Ac2tGraph MakeFigure7bDisconnected(
    const std::vector<crypto::PublicKey>& participants,
    const std::vector<chain::ChainId>& chains, chain::Amount amount,
    TimePoint timestamp);

/// A random connected digraph over `n` participants (for property tests).
Ac2tGraph MakeRandomGraph(const std::vector<crypto::PublicKey>& participants,
                          const std::vector<chain::ChainId>& chains,
                          chain::Amount amount, double extra_edge_prob,
                          Rng* rng, TimePoint timestamp);

}  // namespace ac3::graph

#endif  // AC3_GRAPH_AC2T_GRAPH_H_
