#include "src/contracts/permissionless_contract.h"

#include "src/chain/receipt.h"

namespace ac3::contracts {

Bytes PermissionlessInit::Encode() const {
  ByteWriter w;
  w.PutRaw(recipient.Encode());
  w.PutU32(witness_chain_id);
  w.PutRaw(scw_id.bytes(), crypto::Hash256::kSize);
  w.PutU32(depth);
  w.PutBytes(witness_checkpoint.Encode());
  w.PutU32(witness_difficulty_bits);
  return w.Take();
}

Result<PermissionlessInit> PermissionlessInit::Decode(const Bytes& payload) {
  ByteReader r(payload);
  PermissionlessInit init;
  AC3_ASSIGN_OR_RETURN(init.recipient, crypto::PublicKey::Decode(&r));
  AC3_ASSIGN_OR_RETURN(init.witness_chain_id, r.GetU32());
  AC3_ASSIGN_OR_RETURN(Bytes scw_raw, r.GetRaw(crypto::Hash256::kSize));
  std::array<uint8_t, crypto::Hash256::kSize> arr{};
  std::copy(scw_raw.begin(), scw_raw.end(), arr.begin());
  init.scw_id = crypto::Hash256(arr);
  AC3_ASSIGN_OR_RETURN(init.depth, r.GetU32());
  AC3_ASSIGN_OR_RETURN(Bytes checkpoint_bytes, r.GetBytes());
  ByteReader cr(checkpoint_bytes);
  AC3_ASSIGN_OR_RETURN(init.witness_checkpoint,
                       chain::BlockHeader::Decode(&cr));
  AC3_ASSIGN_OR_RETURN(init.witness_difficulty_bits, r.GetU32());
  return init;
}

Result<ContractPtr> PermissionlessContract::Create(const Bytes& payload,
                                                   const DeployContext& ctx) {
  AC3_ASSIGN_OR_RETURN(PermissionlessInit init,
                       PermissionlessInit::Decode(payload));
  if (!init.recipient.IsValid()) {
    return Status::InvalidArgument("PermissionlessSC recipient invalid");
  }
  if (init.scw_id.IsZero()) {
    return Status::InvalidArgument("PermissionlessSC needs the SCw id");
  }
  if (init.witness_checkpoint.chain_id != init.witness_chain_id) {
    return Status::InvalidArgument(
        "witness checkpoint belongs to another chain");
  }
  if (ctx.value == 0) {
    return Status::InvalidArgument(
        "PermissionlessSC must lock a positive asset");
  }
  auto contract = std::make_shared<PermissionlessContract>();
  contract->set_recipient(init.recipient);
  contract->init_ = std::move(init);
  contract->BindDeployment(ctx);
  return ContractPtr(contract);
}

bool PermissionlessContract::WitnessStateProven(const Bytes& args,
                                                WitnessState expected) const {
  auto evidence = HeaderChainEvidence::Decode(args);
  if (!evidence.ok()) return false;
  // Algorithm 4: evidence must show the SCw state update "at depth >= d".
  Status verified = VerifyHeaderChainEvidence(
      init_.witness_checkpoint, init_.witness_difficulty_bits, *evidence,
      init_.depth);
  if (!verified.ok()) return false;
  if (!evidence->leaf_is_receipt) return false;
  auto receipt = chain::Receipt::Decode(evidence->leaf);
  if (!receipt.ok()) return false;
  return receipt->success && receipt->contract_id == init_.scw_id &&
         receipt->state_digest == WitnessStateDigest(expected);
}

bool PermissionlessContract::IsRedeemable(const Bytes& args,
                                          const CallContext& ctx) const {
  (void)ctx;
  return WitnessStateProven(args, WitnessState::kRedeemAuthorized);
}

bool PermissionlessContract::IsRefundable(const Bytes& args,
                                          const CallContext& ctx) const {
  (void)ctx;
  return WitnessStateProven(args, WitnessState::kRefundAuthorized);
}

}  // namespace ac3::contracts
