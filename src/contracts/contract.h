// Smart-contract framework: Herlihy's "contract as an object" model that the
// paper adopts (Section 2.3).
//
// A contract is an immutable snapshot: calling a function produces a *new*
// snapshot (or fails, leaving state unchanged). Miners execute calls
// deterministically while applying a block; because snapshots are immutable
// and stored per block, contract state is automatically branch-local — a
// fork carries its own contract states, which is exactly what the fork
// experiments of Section 4.2 / Lemma 5.3 exercise.
//
// Contracts receive implicit parameters the way the paper describes:
// msg.sender (the signer of the deploy/call transaction) and msg.value (the
// asset locked at deployment).

#ifndef AC3_CONTRACTS_CONTRACT_H_
#define AC3_CONTRACTS_CONTRACT_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/chain/params.h"
#include "src/common/bytes.h"
#include "src/common/sim_time.h"
#include "src/common/status.h"
#include "src/crypto/hash256.h"
#include "src/crypto/schnorr.h"

namespace ac3::contracts {

/// An asset transfer ordered by a contract ("transfer a to r"). The ledger
/// materializes payouts as new unspent outputs of the call transaction.
struct Payout {
  chain::Amount value = 0;
  crypto::PublicKey recipient;
};

/// Implicit parameters of a deployment message.
struct DeployContext {
  chain::ChainId chain_id = 0;
  crypto::Hash256 tx_id;        ///< Becomes the contract id.
  crypto::PublicKey sender;     ///< msg.sender.
  chain::Amount value = 0;      ///< msg.value (locked in the contract).
  TimePoint block_time = 0;
  uint64_t block_height = 0;
};

/// Implicit parameters of a function-call message.
struct CallContext {
  chain::ChainId chain_id = 0;
  crypto::Hash256 tx_id;
  crypto::PublicKey sender;  ///< msg.sender.
  TimePoint block_time = 0;
  uint64_t block_height = 0;
  /// Out-parameter: transfers ordered by the executed function.
  std::vector<Payout>* payouts = nullptr;
};

/// Result of a function call: the successor contract snapshot plus a note
/// recorded in the receipt.
struct CallOutcome {
  std::shared_ptr<const class Contract> next;
  std::string note;
};

/// Base class for all contracts. Subclasses are value types cloned on every
/// successful state transition.
class Contract {
 public:
  virtual ~Contract() = default;

  /// Registry key ("HTLC", "CentralizedSC", "PermissionlessSC",
  /// "WitnessSC", "RelaySC"...).
  virtual std::string Kind() const = 0;

  /// Canonical digest of the current state, recorded in receipts. Evidence
  /// checks compare these bytes (e.g. [RDauth]).
  virtual Bytes StateDigest() const = 0;

  /// Executes `function(args)` against this snapshot. On success returns
  /// the successor snapshot; on failed `requires(...)` guards returns
  /// FailedPrecondition (the ledger then emits success=false receipts and
  /// keeps this snapshot). The asset stays locked until a function pays it
  /// out via ctx->payouts.
  virtual Result<CallOutcome> Call(const std::string& function,
                                   const Bytes& args,
                                   const CallContext& ctx) const = 0;

  // ---- common fields (set by the framework at deployment) --------------
  const crypto::Hash256& id() const { return id_; }
  const crypto::PublicKey& deployer() const { return deployer_; }
  chain::Amount locked_value() const { return locked_value_; }
  chain::ChainId chain_id() const { return chain_id_; }
  uint64_t deploy_height() const { return deploy_height_; }

  /// Called once by the factory right after construction.
  void BindDeployment(const DeployContext& ctx) {
    id_ = ctx.tx_id;
    deployer_ = ctx.sender;
    locked_value_ = ctx.value;
    chain_id_ = ctx.chain_id;
    deploy_height_ = ctx.block_height;
  }

  /// Copies the deployment binding onto a successor snapshot.
  void InheritBinding(const Contract& prev) {
    id_ = prev.id_;
    deployer_ = prev.deployer_;
    locked_value_ = prev.locked_value_;
    chain_id_ = prev.chain_id_;
    deploy_height_ = prev.deploy_height_;
  }

  /// Successor with the locked value released (after a payout).
  void ClearLockedValue() { locked_value_ = 0; }

 private:
  crypto::Hash256 id_;
  crypto::PublicKey deployer_;
  chain::Amount locked_value_ = 0;
  chain::ChainId chain_id_ = 0;
  uint64_t deploy_height_ = 0;
};

using ContractPtr = std::shared_ptr<const Contract>;

/// Maps contract kinds to constructors. All concrete contracts register
/// themselves (see RegisterBuiltinContracts) so deploy transactions can name
/// their kind as a string, like naming a compiled EVM artifact.
class ContractFactory {
 public:
  using Creator =
      std::function<Result<ContractPtr>(const Bytes& init_payload,
                                        const DeployContext& ctx)>;

  static ContractFactory& Instance();

  /// Registers (or replaces) the creator for `kind`.
  void Register(const std::string& kind, Creator creator);

  /// Instantiates a contract of `kind` from a deploy transaction.
  Result<ContractPtr> Deploy(const std::string& kind, const Bytes& payload,
                             const DeployContext& ctx) const;

  bool Knows(const std::string& kind) const;

 private:
  std::map<std::string, Creator> creators_;
};

/// Registers every contract shipped with the library (idempotent). Called
/// lazily by the ledger; exposed for tests.
void RegisterBuiltinContracts();

}  // namespace ac3::contracts

#endif  // AC3_CONTRACTS_CONTRACT_H_
