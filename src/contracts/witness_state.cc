#include "src/contracts/witness_state.h"

namespace ac3::contracts {

const char* WitnessStateName(WitnessState state) {
  switch (state) {
    case WitnessState::kPublished:
      return "P";
    case WitnessState::kRedeemAuthorized:
      return "RDauth";
    case WitnessState::kRefundAuthorized:
      return "RFauth";
  }
  return "?";
}

Bytes WitnessStateDigest(WitnessState state) {
  return Bytes{static_cast<uint8_t>(state)};
}

}  // namespace ac3::contracts
