// Witness-contract states (Algorithm 3 line 1), shared between the witness
// contract itself and the asset-chain contracts that verify evidence about
// it (Algorithm 4).

#ifndef AC3_CONTRACTS_WITNESS_STATE_H_
#define AC3_CONTRACTS_WITNESS_STATE_H_

#include <cstdint>

#include "src/common/bytes.h"

namespace ac3::contracts {

/// {Published (P), Redeem_Authorized (RDauth), Refund_Authorized (RFauth)}.
enum class WitnessState : uint8_t {
  kPublished = 1,
  kRedeemAuthorized = 2,
  kRefundAuthorized = 3,
};

const char* WitnessStateName(WitnessState state);

/// Canonical one-byte digest recorded in receipts; what Algorithm 4
/// evidence checks compare against.
Bytes WitnessStateDigest(WitnessState state);

}  // namespace ac3::contracts

#endif  // AC3_CONTRACTS_WITNESS_STATE_H_
