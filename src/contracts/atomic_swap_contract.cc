#include "src/contracts/atomic_swap_contract.h"

namespace ac3::contracts {

const char* SwapStateName(SwapState state) {
  switch (state) {
    case SwapState::kPublished:
      return "P";
    case SwapState::kRedeemed:
      return "RD";
    case SwapState::kRefunded:
      return "RF";
  }
  return "?";
}

Bytes SwapStateDigest(SwapState state) {
  return Bytes{static_cast<uint8_t>(state)};
}

Bytes AtomicSwapContract::StateDigest() const {
  return SwapStateDigest(state_);
}

Result<CallOutcome> AtomicSwapContract::Call(const std::string& function,
                                             const Bytes& args,
                                             const CallContext& ctx) const {
  if (function == kRedeemFunction) {
    if (state_ != SwapState::kPublished) {
      return Status::FailedPrecondition("redeem requires state P, is " +
                                        std::string(SwapStateName(state_)));
    }
    if (!IsRedeemable(args, ctx)) {
      return Status::FailedPrecondition("IsRedeemable rejected the secret");
    }
    // transfer a to r (Algorithm 1 line 15).
    ctx.payouts->push_back(Payout{locked_value(), recipient_});
    std::shared_ptr<AtomicSwapContract> next = CloneSelf();
    next->InheritBinding(*this);
    next->ClearLockedValue();
    next->set_state(SwapState::kRedeemed);
    return CallOutcome{next, "redeemed"};
  }

  if (function == kRefundFunction) {
    if (state_ != SwapState::kPublished) {
      return Status::FailedPrecondition("refund requires state P, is " +
                                        std::string(SwapStateName(state_)));
    }
    if (!IsRefundable(args, ctx)) {
      return Status::FailedPrecondition("IsRefundable rejected the secret");
    }
    // transfer a to s (Algorithm 1 line 20).
    ctx.payouts->push_back(Payout{locked_value(), sender()});
    std::shared_ptr<AtomicSwapContract> next = CloneSelf();
    next->InheritBinding(*this);
    next->ClearLockedValue();
    next->set_state(SwapState::kRefunded);
    return CallOutcome{next, "refunded"};
  }

  return Status::InvalidArgument("unknown function: " + function);
}

}  // namespace ac3::contracts
