#include "src/contracts/relay_contract.h"

#include "src/chain/transaction.h"

namespace ac3::contracts {

Bytes RelayInit::Encode() const {
  ByteWriter w;
  w.PutBytes(checkpoint.Encode());
  w.PutU32(validated_difficulty_bits);
  w.PutRaw(interesting_tx.bytes(), crypto::Hash256::kSize);
  w.PutU32(required_depth);
  return w.Take();
}

Result<RelayInit> RelayInit::Decode(const Bytes& payload) {
  ByteReader r(payload);
  RelayInit init;
  AC3_ASSIGN_OR_RETURN(Bytes checkpoint_bytes, r.GetBytes());
  ByteReader cr(checkpoint_bytes);
  AC3_ASSIGN_OR_RETURN(init.checkpoint, chain::BlockHeader::Decode(&cr));
  AC3_ASSIGN_OR_RETURN(init.validated_difficulty_bits, r.GetU32());
  AC3_ASSIGN_OR_RETURN(Bytes tx_raw, r.GetRaw(crypto::Hash256::kSize));
  std::array<uint8_t, crypto::Hash256::kSize> arr{};
  std::copy(tx_raw.begin(), tx_raw.end(), arr.begin());
  init.interesting_tx = crypto::Hash256(arr);
  AC3_ASSIGN_OR_RETURN(init.required_depth, r.GetU32());
  return init;
}

Result<ContractPtr> RelayContract::Create(const Bytes& payload,
                                          const DeployContext& ctx) {
  AC3_ASSIGN_OR_RETURN(RelayInit init, RelayInit::Decode(payload));
  if (init.interesting_tx.IsZero()) {
    return Status::InvalidArgument("relay needs a transaction of interest");
  }
  auto contract = std::make_shared<RelayContract>();
  contract->init_ = std::move(init);
  contract->BindDeployment(ctx);
  return ContractPtr(contract);
}

Bytes RelayContract::StateDigest() const {
  return Bytes{static_cast<uint8_t>(state_)};
}

Result<CallOutcome> RelayContract::Call(const std::string& function,
                                        const Bytes& args,
                                        const CallContext& ctx) const {
  (void)ctx;
  if (function != kSubmitEvidenceFunction) {
    return Status::InvalidArgument("unknown function: " + function);
  }
  if (state_ != RelayState::kS1) {
    return Status::FailedPrecondition("relay already satisfied (S2)");
  }
  auto evidence = HeaderChainEvidence::Decode(args);
  if (!evidence.ok()) {
    return Status::FailedPrecondition("malformed evidence");
  }
  Status verified = VerifyHeaderChainEvidence(
      init_.checkpoint, init_.validated_difficulty_bits, *evidence,
      init_.required_depth);
  if (!verified.ok()) {
    return Status::FailedPrecondition("evidence rejected: " +
                                      verified.ToString());
  }
  if (evidence->leaf_is_receipt) {
    return Status::FailedPrecondition("expected a transaction leaf");
  }
  auto tx = chain::Transaction::Decode(evidence->leaf);
  if (!tx.ok() || tx->Id() != init_.interesting_tx) {
    return Status::FailedPrecondition("evidence proves the wrong transaction");
  }

  auto next = std::make_shared<RelayContract>(*this);
  next->state_ = RelayState::kS2;
  // Roll the checkpoint forward to the newest header seen (a long-lived
  // relay keeps tracking the validated chain).
  next->init_.checkpoint = evidence->headers.back();
  return CallOutcome{next, "TX1 proven; S1 -> S2"};
}

}  // namespace ac3::contracts
