// HTLC: the hashlock + timelock contract of Nolan's and Herlihy's protocols
// (Section 1).
//
//   redeem(s): requires H(s) == hashlock, any time before/after — revealing
//              s on-chain is what lets upstream parties redeem in turn.
//   refund():  requires block time >= timelock — the expiry that, per the
//              paper's motivating example, costs a crashed participant
//              their asset.
//
// Deploy payload: recipient pubkey, 32-byte hashlock, i64 timelock (ms).

#ifndef AC3_CONTRACTS_HTLC_CONTRACT_H_
#define AC3_CONTRACTS_HTLC_CONTRACT_H_

#include <memory>
#include <string>

#include "src/common/sim_time.h"
#include "src/contracts/atomic_swap_contract.h"
#include "src/crypto/commitment.h"

namespace ac3::contracts {

inline constexpr char kHtlcKind[] = "HTLC";

class HtlcContract : public AtomicSwapContract {
 public:
  /// Builds the deploy payload.
  static Bytes MakeInitPayload(const crypto::PublicKey& recipient,
                               const crypto::Hash256& hashlock,
                               TimePoint timelock);

  /// ContractFactory creator.
  static Result<ContractPtr> Create(const Bytes& payload,
                                    const DeployContext& ctx);

  std::string Kind() const override { return kHtlcKind; }

  const crypto::Hash256& hashlock() const { return hashlock_.lock(); }
  TimePoint timelock() const { return timelock_; }

  /// args = the revealed secret preimage s.
  bool IsRedeemable(const Bytes& args, const CallContext& ctx) const override;
  /// Refund unlocks once the block time passes the timelock.
  bool IsRefundable(const Bytes& args, const CallContext& ctx) const override;

 protected:
  std::shared_ptr<AtomicSwapContract> CloneSelf() const override {
    return std::make_shared<HtlcContract>(*this);
  }

 private:
  crypto::HashlockCommitment hashlock_;
  TimePoint timelock_ = 0;
};

}  // namespace ac3::contracts

#endif  // AC3_CONTRACTS_HTLC_CONTRACT_H_
