#include "src/contracts/witness_contract.h"

#include "src/contracts/permissionless_contract.h"

namespace ac3::contracts {

Bytes EdgeSpec::Encode() const {
  ByteWriter w;
  w.PutU32(chain_id);
  w.PutRaw(sender.Encode());
  w.PutRaw(recipient.Encode());
  w.PutU64(amount);
  w.PutU32(min_evidence_depth);
  w.PutBytes(asset_checkpoint.Encode());
  w.PutU32(asset_difficulty_bits);
  return w.Take();
}

Result<EdgeSpec> EdgeSpec::Decode(ByteReader* reader) {
  EdgeSpec spec;
  AC3_ASSIGN_OR_RETURN(spec.chain_id, reader->GetU32());
  AC3_ASSIGN_OR_RETURN(spec.sender, crypto::PublicKey::Decode(reader));
  AC3_ASSIGN_OR_RETURN(spec.recipient, crypto::PublicKey::Decode(reader));
  AC3_ASSIGN_OR_RETURN(spec.amount, reader->GetU64());
  AC3_ASSIGN_OR_RETURN(spec.min_evidence_depth, reader->GetU32());
  AC3_ASSIGN_OR_RETURN(Bytes checkpoint_bytes, reader->GetBytes());
  ByteReader cr(checkpoint_bytes);
  AC3_ASSIGN_OR_RETURN(spec.asset_checkpoint,
                       chain::BlockHeader::Decode(&cr));
  AC3_ASSIGN_OR_RETURN(spec.asset_difficulty_bits, reader->GetU32());
  return spec;
}

Bytes WitnessInit::Encode() const {
  ByteWriter w;
  w.PutU32(static_cast<uint32_t>(participants.size()));
  for (const crypto::PublicKey& pk : participants) w.PutRaw(pk.Encode());
  w.PutBytes(ms_encoded);
  w.PutU32(static_cast<uint32_t>(edges.size()));
  for (const EdgeSpec& edge : edges) w.PutBytes(edge.Encode());
  return w.Take();
}

Result<WitnessInit> WitnessInit::Decode(const Bytes& payload) {
  ByteReader r(payload);
  WitnessInit init;
  AC3_ASSIGN_OR_RETURN(uint32_t n_participants, r.GetU32());
  for (uint32_t i = 0; i < n_participants; ++i) {
    AC3_ASSIGN_OR_RETURN(crypto::PublicKey pk, crypto::PublicKey::Decode(&r));
    init.participants.push_back(pk);
  }
  AC3_ASSIGN_OR_RETURN(init.ms_encoded, r.GetBytes());
  AC3_ASSIGN_OR_RETURN(uint32_t n_edges, r.GetU32());
  for (uint32_t i = 0; i < n_edges; ++i) {
    AC3_ASSIGN_OR_RETURN(Bytes edge_bytes, r.GetBytes());
    ByteReader er(edge_bytes);
    AC3_ASSIGN_OR_RETURN(EdgeSpec spec, EdgeSpec::Decode(&er));
    init.edges.push_back(std::move(spec));
  }
  return init;
}

Bytes EncodeEdgeEvidence(const std::vector<HeaderChainEvidence>& evidence) {
  ByteWriter w;
  w.PutU32(static_cast<uint32_t>(evidence.size()));
  for (const HeaderChainEvidence& ev : evidence) w.PutBytes(ev.Encode());
  return w.Take();
}

Result<std::vector<HeaderChainEvidence>> DecodeEdgeEvidence(
    const Bytes& args) {
  ByteReader r(args);
  AC3_ASSIGN_OR_RETURN(uint32_t count, r.GetU32());
  std::vector<HeaderChainEvidence> out;
  for (uint32_t i = 0; i < count; ++i) {
    AC3_ASSIGN_OR_RETURN(Bytes ev_bytes, r.GetBytes());
    AC3_ASSIGN_OR_RETURN(HeaderChainEvidence ev,
                         HeaderChainEvidence::Decode(ev_bytes));
    out.push_back(std::move(ev));
  }
  return out;
}

Result<ContractPtr> WitnessContract::Create(const Bytes& payload,
                                            const DeployContext& ctx) {
  AC3_ASSIGN_OR_RETURN(WitnessInit init, WitnessInit::Decode(payload));
  if (init.participants.empty()) {
    return Status::InvalidArgument("SCw needs participants");
  }
  if (init.edges.empty()) {
    return Status::InvalidArgument("SCw needs at least one edge");
  }
  // Registration check: ms(D) must carry a valid signature from every
  // participant — the witnesses accept only graphs everyone agreed on.
  AC3_ASSIGN_OR_RETURN(crypto::Multisignature ms,
                       crypto::Multisignature::Decode(init.ms_encoded));
  if (!ms.VerifyAll(init.participants)) {
    return Status::VerificationFailed(
        "ms(D) is not signed by all participants");
  }
  auto contract = std::make_shared<WitnessContract>();
  contract->init_ = std::move(init);
  contract->BindDeployment(ctx);
  return ContractPtr(contract);
}

Bytes WitnessContract::StateDigest() const {
  return WitnessStateDigest(state_);
}

crypto::Hash256 WitnessContract::ms_id() const {
  return crypto::Hash256::Of(init_.ms_encoded);
}

bool WitnessContract::IsParticipant(const crypto::PublicKey& key) const {
  for (const crypto::PublicKey& pk : init_.participants) {
    if (pk == key) return true;
  }
  return false;
}

Status WitnessContract::VerifyEdge(size_t i,
                                   const HeaderChainEvidence& evidence) const {
  const EdgeSpec& spec = init_.edges[i];
  const std::string tag = "edge " + std::to_string(i) + ": ";

  // Deployment evidence is anchored at the edge chain's checkpoint. Depth 0
  // suffices here: the *decision* (SCw's own state change) is what gets
  // buried under d blocks.
  AC3_RETURN_IF_ERROR(VerifyHeaderChainEvidence(
      spec.asset_checkpoint, spec.asset_difficulty_bits, evidence,
      /*min_confirmations=*/0));
  if (evidence.leaf_is_receipt) {
    return Status::VerificationFailed(tag + "expected a deploy transaction");
  }
  AC3_ASSIGN_OR_RETURN(chain::Transaction deploy_tx,
                       chain::Transaction::Decode(evidence.leaf));
  if (deploy_tx.type != chain::TxType::kDeploy) {
    return Status::VerificationFailed(tag + "leaf is not a deployment");
  }
  if (deploy_tx.chain_id != spec.chain_id) {
    return Status::VerificationFailed(tag + "deployed on the wrong chain");
  }
  if (deploy_tx.contract_kind != kPermissionlessKind) {
    return Status::VerificationFailed(tag + "wrong contract kind");
  }
  if (deploy_tx.signer != spec.sender) {
    return Status::VerificationFailed(tag + "deployed by the wrong sender");
  }
  if (deploy_tx.contract_value != spec.amount) {
    return Status::VerificationFailed(tag + "locks the wrong asset value");
  }
  AC3_ASSIGN_OR_RETURN(PermissionlessInit sc_init,
                       PermissionlessInit::Decode(deploy_tx.payload));
  if (sc_init.recipient != spec.recipient) {
    return Status::VerificationFailed(tag + "wrong recipient");
  }
  // The redemption/refund of the contract must be conditioned on *this*
  // SCw in *this* witness chain, at an agreed minimum depth.
  if (sc_init.witness_chain_id != chain_id()) {
    return Status::VerificationFailed(tag +
                                      "conditioned on another witness chain");
  }
  if (sc_init.scw_id != id()) {
    return Status::VerificationFailed(tag + "conditioned on another SCw");
  }
  if (sc_init.depth < spec.min_evidence_depth) {
    return Status::VerificationFailed(tag + "evidence depth below agreement");
  }
  return Status::OK();
}

Status WitnessContract::VerifyContracts(
    const std::vector<HeaderChainEvidence>& evidence) const {
  if (evidence.size() != init_.edges.size()) {
    return Status::VerificationFailed(
        "need evidence for every edge of the AC2T");
  }
  for (size_t i = 0; i < evidence.size(); ++i) {
    AC3_RETURN_IF_ERROR(VerifyEdge(i, evidence[i]));
  }
  return Status::OK();
}

Result<CallOutcome> WitnessContract::Call(const std::string& function,
                                          const Bytes& args,
                                          const CallContext& ctx) const {
  if (!IsParticipant(ctx.sender)) {
    return Status::FailedPrecondition(
        "state change requests must come from an AC2T participant");
  }

  if (function == kAuthorizeRedeemFunction) {
    // requires(state == P and VerifyContracts(e)) — Algorithm 3 line 11.
    if (state_ != WitnessState::kPublished) {
      return Status::FailedPrecondition(
          std::string("AuthorizeRedeem requires P, state is ") +
          WitnessStateName(state_));
    }
    auto evidence = DecodeEdgeEvidence(args);
    if (!evidence.ok()) {
      return Status::FailedPrecondition("malformed evidence: " +
                                        evidence.status().ToString());
    }
    Status verified = VerifyContracts(*evidence);
    if (!verified.ok()) {
      return Status::FailedPrecondition("VerifyContracts failed: " +
                                        verified.ToString());
    }
    auto next = std::make_shared<WitnessContract>(*this);
    next->state_ = WitnessState::kRedeemAuthorized;
    return CallOutcome{next, "commit: RDauth"};
  }

  if (function == kAuthorizeRefundFunction) {
    // requires(state == P) — Algorithm 3 line 15.
    if (state_ != WitnessState::kPublished) {
      return Status::FailedPrecondition(
          std::string("AuthorizeRefund requires P, state is ") +
          WitnessStateName(state_));
    }
    auto next = std::make_shared<WitnessContract>(*this);
    next->state_ = WitnessState::kRefundAuthorized;
    return CallOutcome{next, "abort: RFauth"};
  }

  return Status::InvalidArgument("unknown function: " + function);
}

}  // namespace ac3::contracts
