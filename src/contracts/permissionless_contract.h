// Algorithm 4: the asset-chain smart contract for permissionless AC3
// (AC3WN).
//
// Both commitment-scheme instances are the pair (SCw, d): redemption and
// refund are conditioned on the *witness contract's state*, proven by
// Section 4.3 evidence:
//
//   IsRedeemable(e): e validates that SCw's state is RDauth and that the
//                    state update is at depth >= d
//   IsRefundable(e): same with RFauth
//
// Deploy payload: recipient pubkey, witness chain id, SCw contract id,
// depth d, the stored stable witness-chain header (the relay checkpoint),
// and the witness chain's difficulty.

#ifndef AC3_CONTRACTS_PERMISSIONLESS_CONTRACT_H_
#define AC3_CONTRACTS_PERMISSIONLESS_CONTRACT_H_

#include <memory>
#include <string>

#include "src/chain/block.h"
#include "src/contracts/atomic_swap_contract.h"
#include "src/contracts/evidence.h"
#include "src/contracts/witness_state.h"

namespace ac3::contracts {

inline constexpr char kPermissionlessKind[] = "PermissionlessSC";

/// Decoded constructor arguments (exposed so SCw's VerifyContracts can
/// validate a deployment against its edge specification).
struct PermissionlessInit {
  crypto::PublicKey recipient;
  chain::ChainId witness_chain_id = 0;
  crypto::Hash256 scw_id;
  uint32_t depth = 0;  ///< d: required burial of the SCw state change.
  chain::BlockHeader witness_checkpoint;
  uint32_t witness_difficulty_bits = 0;

  Bytes Encode() const;
  static Result<PermissionlessInit> Decode(const Bytes& payload);
};

class PermissionlessContract : public AtomicSwapContract {
 public:
  static Result<ContractPtr> Create(const Bytes& payload,
                                    const DeployContext& ctx);

  std::string Kind() const override { return kPermissionlessKind; }

  const PermissionlessInit& init() const { return init_; }

  /// args = encoded HeaderChainEvidence of the SCw receipt.
  bool IsRedeemable(const Bytes& args, const CallContext& ctx) const override;
  bool IsRefundable(const Bytes& args, const CallContext& ctx) const override;

 protected:
  std::shared_ptr<AtomicSwapContract> CloneSelf() const override {
    return std::make_shared<PermissionlessContract>(*this);
  }

 private:
  /// Shared logic of the two checks: evidence shows SCw in `expected` at
  /// depth >= d.
  bool WitnessStateProven(const Bytes& args, WitnessState expected) const;

  PermissionlessInit init_;
};

}  // namespace ac3::contracts

#endif  // AC3_CONTRACTS_PERMISSIONLESS_CONTRACT_H_
