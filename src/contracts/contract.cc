#include "src/contracts/contract.h"

namespace ac3::contracts {

ContractFactory& ContractFactory::Instance() {
  static ContractFactory* factory = new ContractFactory();
  return *factory;
}

void ContractFactory::Register(const std::string& kind, Creator creator) {
  creators_[kind] = std::move(creator);
}

Result<ContractPtr> ContractFactory::Deploy(const std::string& kind,
                                            const Bytes& payload,
                                            const DeployContext& ctx) const {
  auto it = creators_.find(kind);
  if (it == creators_.end()) {
    return Status::NotFound("unknown contract kind: " + kind);
  }
  return it->second(payload, ctx);
}

bool ContractFactory::Knows(const std::string& kind) const {
  return creators_.count(kind) > 0;
}

}  // namespace ac3::contracts
