// Cross-chain evidence: the paper's Section 4.3 proposal, in full.
//
// "A smart contract in the validator blockchain ... stores the header of a
//  stable block in the validated blockchain. ... a participant can submit
//  evidence [comprising] the headers of all the blocks that follow the
//  stored stable block ... The smart contract function validates that the
//  passed headers follow the header of the stable block ... that the proof
//  of work of each header is valid ... [and] that the transaction of
//  interest indeed took place and that [its] block ... is buried under d
//  blocks."
//
// Evidence here proves inclusion of either a transaction (e.g. a contract
// deployment, for SCw's VerifyContracts) or a receipt (e.g. "SCw moved to
// RDauth", for Algorithm 4's IsRedeemable) via a Merkle path against the
// tx/receipt root of one of the presented headers.
//
// Verification is a *pure function* of (stored checkpoint, evidence bytes):
// miners of the validator chain never read the validated chain's data
// structures — exactly the paper's point.

#ifndef AC3_CONTRACTS_EVIDENCE_H_
#define AC3_CONTRACTS_EVIDENCE_H_

#include <vector>

#include "src/chain/block.h"
#include "src/chain/receipt.h"
#include "src/chain/transaction.h"
#include "src/common/status.h"
#include "src/crypto/merkle.h"

namespace ac3::contracts {

/// Self-contained proof that an item (transaction or receipt) is included
/// in the validated chain at sufficient depth beyond a known checkpoint.
struct HeaderChainEvidence {
  /// Consecutive headers; headers[0] extends the stored checkpoint.
  std::vector<chain::BlockHeader> headers;
  /// Index into `headers` of the block containing the item.
  uint32_t target_index = 0;
  /// True: `leaf` is an encoded Receipt (proved against receipt_root).
  /// False: `leaf` is an encoded Transaction (proved against tx_root).
  bool leaf_is_receipt = false;
  /// The encoded item itself.
  Bytes leaf;
  crypto::MerkleProof proof;

  Bytes Encode() const;
  static Result<HeaderChainEvidence> Decode(const Bytes& encoded);

  /// Blocks on top of the target block within this evidence.
  uint32_t ConfirmationsShown() const {
    return static_cast<uint32_t>(headers.size()) - 1 - target_index;
  }
};

/// Verifies `evidence` against the stored `checkpoint`:
///   1. headers[0] extends the checkpoint (hash + height + chain id),
///   2. consecutive linkage and monotone heights throughout,
///   3. every header declares `required_difficulty_bits` and its PoW holds,
///   4. the Merkle proof binds `leaf` to the target header's relevant root,
///   5. at least `min_confirmations` headers follow the target block.
/// The caller then parses `leaf` and checks the item's semantics.
Status VerifyHeaderChainEvidence(const chain::BlockHeader& checkpoint,
                                 uint32_t required_difficulty_bits,
                                 const HeaderChainEvidence& evidence,
                                 uint32_t min_confirmations);

}  // namespace ac3::contracts

#endif  // AC3_CONTRACTS_EVIDENCE_H_
