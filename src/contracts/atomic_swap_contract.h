// Algorithm 1: the atomic-swap smart-contract template.
//
// "Each smart contract has a sender s and recipient r, an asset a to be
//  transferred from s to r through the contract, a state, and a redemption
//  and refund commitment scheme instances rd and rf."
//
// The base class implements the state machine (P -> RD via redeem, P -> RF
// via refund, nothing else) and the asset transfer; subclasses implement
// the two commitment-scheme checks IsRedeemable / IsRefundable exactly as
// Algorithms 2 (AC3TW) and 4 (AC3WN) and the HTLC baseline instantiate
// them.

#ifndef AC3_CONTRACTS_ATOMIC_SWAP_CONTRACT_H_
#define AC3_CONTRACTS_ATOMIC_SWAP_CONTRACT_H_

#include <memory>
#include <string>

#include "src/contracts/contract.h"

namespace ac3::contracts {

/// Algorithm 1 line 1: {Published (P), Redeemed (RD), Refunded (RF)}.
enum class SwapState : uint8_t {
  kPublished = 1,
  kRedeemed = 2,
  kRefunded = 3,
};

const char* SwapStateName(SwapState state);

/// Function names accepted by Call().
inline constexpr char kRedeemFunction[] = "redeem";
inline constexpr char kRefundFunction[] = "refund";

class AtomicSwapContract : public Contract {
 public:
  SwapState state() const { return state_; }
  const crypto::PublicKey& sender() const { return deployer(); }
  const crypto::PublicKey& recipient() const { return recipient_; }

  Bytes StateDigest() const override;

  /// Dispatches redeem/refund with the Algorithm 1 guards:
  ///   redeem: requires(state == P and IsRedeemable(secret))
  ///           -> transfer a to r; state = RD
  ///   refund: requires(state == P and IsRefundable(secret))
  ///           -> transfer a to s; state = RF
  Result<CallOutcome> Call(const std::string& function, const Bytes& args,
                           const CallContext& ctx) const override;

  /// Commitment-scheme checks (Algorithm 1 lines 23–28). `args` carries the
  /// revealed secret / evidence; `ctx` provides block time for timelocks.
  virtual bool IsRedeemable(const Bytes& args, const CallContext& ctx) const = 0;
  virtual bool IsRefundable(const Bytes& args, const CallContext& ctx) const = 0;

 protected:
  /// Subclasses clone themselves (state transitions are copy-on-write).
  virtual std::shared_ptr<AtomicSwapContract> CloneSelf() const = 0;

  void set_recipient(crypto::PublicKey recipient) { recipient_ = recipient; }
  void set_state(SwapState state) { state_ = state; }

 private:
  crypto::PublicKey recipient_;
  SwapState state_ = SwapState::kPublished;
};

/// Canonical one-byte digest for a swap state (what receipts record).
Bytes SwapStateDigest(SwapState state);

}  // namespace ac3::contracts

#endif  // AC3_CONTRACTS_ATOMIC_SWAP_CONTRACT_H_
