// Algorithm 2: the smart contract for centralized AC3 (AC3TW).
//
// Both the redemption and refund commitment-scheme instances are the pair
// (ms(D), PK_T); the secrets are Trent's signatures over (ms(D), RD) and
// (ms(D), RF) respectively:
//
//   IsRedeemable(srd): SigVerify((ms(D), RD), PK_T, srd)
//   IsRefundable(srf): SigVerify((ms(D), RF), PK_T, srf)
//
// Deploy payload: recipient pubkey, 32-byte ms(D) id, Trent pubkey.
// Call args: an encoded Schnorr signature (the revealed secret).

#ifndef AC3_CONTRACTS_CENTRALIZED_CONTRACT_H_
#define AC3_CONTRACTS_CENTRALIZED_CONTRACT_H_

#include <memory>
#include <string>

#include "src/contracts/atomic_swap_contract.h"
#include "src/crypto/commitment.h"

namespace ac3::contracts {

inline constexpr char kCentralizedKind[] = "CentralizedSC";

class CentralizedContract : public AtomicSwapContract {
 public:
  static Bytes MakeInitPayload(const crypto::PublicKey& recipient,
                               const crypto::Hash256& ms_id,
                               const crypto::PublicKey& trent);

  static Result<ContractPtr> Create(const Bytes& payload,
                                    const DeployContext& ctx);

  std::string Kind() const override { return kCentralizedKind; }

  const crypto::Hash256& ms_id() const { return redeem_.ms_id(); }
  const crypto::PublicKey& trent() const { return redeem_.trent(); }

  bool IsRedeemable(const Bytes& args, const CallContext& ctx) const override;
  bool IsRefundable(const Bytes& args, const CallContext& ctx) const override;

 protected:
  std::shared_ptr<AtomicSwapContract> CloneSelf() const override {
    return std::make_shared<CentralizedContract>(*this);
  }

 private:
  static bool VerifySecret(const crypto::SignatureCommitment& commitment,
                           const Bytes& args);

  crypto::SignatureCommitment redeem_;
  crypto::SignatureCommitment refund_;
};

}  // namespace ac3::contracts

#endif  // AC3_CONTRACTS_CENTRALIZED_CONTRACT_H_
