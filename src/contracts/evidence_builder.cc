#include "src/contracts/evidence_builder.h"

namespace ac3::contracts {

namespace {

Result<HeaderChainEvidence> BuildEvidence(
    const chain::Blockchain& chain, const crypto::Hash256& checkpoint_hash,
    const crypto::Hash256& tx_id, bool leaf_is_receipt) {
  const chain::BlockEntry* checkpoint = chain.Get(checkpoint_hash);
  if (checkpoint == nullptr) {
    return Status::NotFound("checkpoint block unknown");
  }
  auto location = chain.FindTx(tx_id);
  if (!location.has_value()) {
    return Status::NotFound("transaction not on canonical chain");
  }
  const uint64_t target_height = location->entry->block.header.height;
  if (target_height <= checkpoint->block.header.height) {
    return Status::FailedPrecondition(
        "transaction precedes the checkpoint; evidence cannot cover it");
  }

  HeaderChainEvidence evidence;
  AC3_ASSIGN_OR_RETURN(evidence.headers, chain.HeadersAfter(checkpoint_hash));
  evidence.target_index = static_cast<uint32_t>(
      target_height - checkpoint->block.header.height - 1);
  evidence.leaf_is_receipt = leaf_is_receipt;

  const chain::Block& block = location->entry->block;
  if (leaf_is_receipt) {
    evidence.leaf = block.receipts[location->index].Encode();
    crypto::MerkleTree tree(block.ReceiptLeaves());
    AC3_ASSIGN_OR_RETURN(evidence.proof, tree.Prove(location->index));
  } else {
    evidence.leaf = block.txs[location->index].Encode();
    crypto::MerkleTree tree(block.TxLeaves());
    AC3_ASSIGN_OR_RETURN(evidence.proof, tree.Prove(location->index));
  }
  return evidence;
}

}  // namespace

Result<HeaderChainEvidence> BuildTxEvidence(
    const chain::Blockchain& chain, const crypto::Hash256& checkpoint_hash,
    const crypto::Hash256& tx_id) {
  return BuildEvidence(chain, checkpoint_hash, tx_id,
                       /*leaf_is_receipt=*/false);
}

Result<HeaderChainEvidence> BuildReceiptEvidence(
    const chain::Blockchain& chain, const crypto::Hash256& checkpoint_hash,
    const crypto::Hash256& tx_id) {
  return BuildEvidence(chain, checkpoint_hash, tx_id,
                       /*leaf_is_receipt=*/true);
}

}  // namespace ac3::contracts
