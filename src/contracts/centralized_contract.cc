#include "src/contracts/centralized_contract.h"

namespace ac3::contracts {

Bytes CentralizedContract::MakeInitPayload(const crypto::PublicKey& recipient,
                                           const crypto::Hash256& ms_id,
                                           const crypto::PublicKey& trent) {
  ByteWriter w;
  w.PutRaw(recipient.Encode());
  w.PutRaw(ms_id.bytes(), crypto::Hash256::kSize);
  w.PutRaw(trent.Encode());
  return w.Take();
}

Result<ContractPtr> CentralizedContract::Create(const Bytes& payload,
                                                const DeployContext& ctx) {
  ByteReader r(payload);
  auto contract = std::make_shared<CentralizedContract>();
  AC3_ASSIGN_OR_RETURN(crypto::PublicKey recipient,
                       crypto::PublicKey::Decode(&r));
  AC3_ASSIGN_OR_RETURN(Bytes ms_raw, r.GetRaw(crypto::Hash256::kSize));
  std::array<uint8_t, crypto::Hash256::kSize> arr{};
  std::copy(ms_raw.begin(), ms_raw.end(), arr.begin());
  crypto::Hash256 ms_id(arr);
  AC3_ASSIGN_OR_RETURN(crypto::PublicKey trent, crypto::PublicKey::Decode(&r));
  if (!recipient.IsValid() || !trent.IsValid()) {
    return Status::InvalidArgument("CentralizedSC keys invalid");
  }
  if (ctx.value == 0) {
    return Status::InvalidArgument("CentralizedSC must lock a positive asset");
  }
  contract->set_recipient(recipient);
  // Algorithm 2 line 2: this.rd = this.rf = (ms(D), PK_T) — same pair, two
  // mutually exclusive tags.
  contract->redeem_ = crypto::SignatureCommitment(
      ms_id, trent, crypto::CommitmentTag::kRedeem);
  contract->refund_ = crypto::SignatureCommitment(
      ms_id, trent, crypto::CommitmentTag::kRefund);
  contract->BindDeployment(ctx);
  return ContractPtr(contract);
}

bool CentralizedContract::VerifySecret(
    const crypto::SignatureCommitment& commitment, const Bytes& args) {
  ByteReader r(args);
  auto signature = crypto::Signature::Decode(&r);
  if (!signature.ok()) return false;
  return commitment.VerifySecret(*signature);
}

bool CentralizedContract::IsRedeemable(const Bytes& args,
                                       const CallContext& ctx) const {
  (void)ctx;
  return VerifySecret(redeem_, args);
}

bool CentralizedContract::IsRefundable(const Bytes& args,
                                       const CallContext& ctx) const {
  (void)ctx;
  return VerifySecret(refund_, args);
}

}  // namespace ac3::contracts
