// Builds Section 4.3 evidence from a full node's view of a chain.
//
// Participants (who run or query full nodes) assemble the header chain from
// the checkpoint stored in the target contract up to the canonical head,
// plus the Merkle proof of the item of interest. The *verifier* never needs
// chain access — see evidence.h.

#ifndef AC3_CONTRACTS_EVIDENCE_BUILDER_H_
#define AC3_CONTRACTS_EVIDENCE_BUILDER_H_

#include "src/chain/blockchain.h"
#include "src/contracts/evidence.h"

namespace ac3::contracts {

/// Evidence that transaction `tx_id` is included on `chain`'s canonical
/// chain after `checkpoint_hash` (proved against the block's tx root).
Result<HeaderChainEvidence> BuildTxEvidence(
    const chain::Blockchain& chain, const crypto::Hash256& checkpoint_hash,
    const crypto::Hash256& tx_id);

/// Evidence for the *receipt* of transaction `tx_id` (proved against the
/// block's receipt root) — used for contract state changes like SCw's
/// RDauth / RFauth transitions.
Result<HeaderChainEvidence> BuildReceiptEvidence(
    const chain::Blockchain& chain, const crypto::Hash256& checkpoint_hash,
    const crypto::Hash256& tx_id);

}  // namespace ac3::contracts

#endif  // AC3_CONTRACTS_EVIDENCE_BUILDER_H_
