// Registers every contract kind shipped with the library.

#include "src/contracts/centralized_contract.h"
#include "src/contracts/contract.h"
#include "src/contracts/htlc_contract.h"
#include "src/contracts/permissionless_contract.h"
#include "src/contracts/relay_contract.h"
#include "src/contracts/witness_contract.h"

namespace ac3::contracts {

void RegisterBuiltinContracts() {
  static const bool registered = []() {
    ContractFactory& factory = ContractFactory::Instance();
    factory.Register(kHtlcKind, &HtlcContract::Create);
    factory.Register(kCentralizedKind, &CentralizedContract::Create);
    factory.Register(kPermissionlessKind, &PermissionlessContract::Create);
    factory.Register(kWitnessKind, &WitnessContract::Create);
    factory.Register(kRelayKind, &RelayContract::Create);
    return true;
  }();
  (void)registered;
}

}  // namespace ac3::contracts
