// Algorithm 3: the witness-network smart contract SCw — the AC2T
// coordinator and the heart of AC3WN.
//
// SCw registers the multisigned graph ms(D) and the expected shape of every
// asset-chain contract. Its state is the fate of the whole AC2T:
//
//   AuthorizeRedeem(e): requires(state == P and VerifyContracts(e))
//                       -> state = RDauth         (commit decision)
//   AuthorizeRefund():  requires(state == P)
//                       -> state = RFauth         (abort decision)
//
// Only the transitions P->RDauth and P->RFauth exist; their mutual
// exclusion (plus the depth-d discipline on the asset chains) is what makes
// the protocol atomic (Lemmas 5.1 / 5.3).
//
// VerifyContracts checks Section 4.3 evidence for every edge: the matching
// PermissionlessSC deployment is included in the edge's blockchain, with
// the agreed sender, recipient, asset, and with redemption/refund
// conditioned on *this* SCw at a sufficient depth.

#ifndef AC3_CONTRACTS_WITNESS_CONTRACT_H_
#define AC3_CONTRACTS_WITNESS_CONTRACT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/chain/block.h"
#include "src/contracts/contract.h"
#include "src/contracts/evidence.h"
#include "src/contracts/witness_state.h"
#include "src/crypto/multisig.h"

namespace ac3::contracts {

inline constexpr char kWitnessKind[] = "WitnessSC";
inline constexpr char kAuthorizeRedeemFunction[] = "authorize_redeem";
inline constexpr char kAuthorizeRefundFunction[] = "authorize_refund";

/// What the participants agreed one edge's contract must look like
/// (derived from the AC2T graph D when SCw is registered).
struct EdgeSpec {
  chain::ChainId chain_id = 0;       ///< e.BC — where the asset moves.
  crypto::PublicKey sender;          ///< u of e = (u, v).
  crypto::PublicKey recipient;       ///< v.
  chain::Amount amount = 0;          ///< e.a.
  /// Minimum depth d the asset contract must demand of SCw evidence
  /// (protects the *other* participants from a shallow-d contract).
  uint32_t min_evidence_depth = 0;
  /// Stable header of the asset chain: the checkpoint VerifyContracts
  /// validates deployment evidence against.
  chain::BlockHeader asset_checkpoint;
  uint32_t asset_difficulty_bits = 0;

  Bytes Encode() const;
  static Result<EdgeSpec> Decode(ByteReader* reader);
};

/// Constructor arguments of SCw (Algorithm 3 line 5: participants + ms(D)).
struct WitnessInit {
  std::vector<crypto::PublicKey> participants;
  Bytes ms_encoded;  ///< Encoded crypto::Multisignature over (D, t).
  std::vector<EdgeSpec> edges;

  Bytes Encode() const;
  static Result<WitnessInit> Decode(const Bytes& payload);
};

/// Builds the AuthorizeRedeem argument: one piece of deployment evidence
/// per edge, in edge order.
Bytes EncodeEdgeEvidence(const std::vector<HeaderChainEvidence>& evidence);
Result<std::vector<HeaderChainEvidence>> DecodeEdgeEvidence(const Bytes& args);

class WitnessContract : public Contract {
 public:
  static Result<ContractPtr> Create(const Bytes& payload,
                                    const DeployContext& ctx);

  std::string Kind() const override { return kWitnessKind; }
  Bytes StateDigest() const override;

  WitnessState state() const { return state_; }
  const std::vector<crypto::PublicKey>& participants() const {
    return init_.participants;
  }
  const std::vector<EdgeSpec>& edges() const { return init_.edges; }
  crypto::Hash256 ms_id() const;

  Result<CallOutcome> Call(const std::string& function, const Bytes& args,
                           const CallContext& ctx) const override;

  /// Algorithm 3 line 18: true iff `evidence` validates all the smart
  /// contracts in the AC2T (exposed for tests).
  Status VerifyContracts(const std::vector<HeaderChainEvidence>& evidence) const;

 private:
  bool IsParticipant(const crypto::PublicKey& key) const;
  /// Validates the evidence for edge `i` against init_.edges[i].
  Status VerifyEdge(size_t i, const HeaderChainEvidence& evidence) const;

  WitnessInit init_;
  WitnessState state_ = WitnessState::kPublished;
};

}  // namespace ac3::contracts

#endif  // AC3_CONTRACTS_WITNESS_CONTRACT_H_
