#include "src/contracts/htlc_contract.h"

namespace ac3::contracts {

Bytes HtlcContract::MakeInitPayload(const crypto::PublicKey& recipient,
                                    const crypto::Hash256& hashlock,
                                    TimePoint timelock) {
  ByteWriter w;
  w.PutRaw(recipient.Encode());
  w.PutRaw(hashlock.bytes(), crypto::Hash256::kSize);
  w.PutI64(timelock);
  return w.Take();
}

Result<ContractPtr> HtlcContract::Create(const Bytes& payload,
                                         const DeployContext& ctx) {
  ByteReader r(payload);
  auto contract = std::make_shared<HtlcContract>();
  AC3_ASSIGN_OR_RETURN(crypto::PublicKey recipient,
                       crypto::PublicKey::Decode(&r));
  AC3_ASSIGN_OR_RETURN(Bytes lock_raw, r.GetRaw(crypto::Hash256::kSize));
  std::array<uint8_t, crypto::Hash256::kSize> arr{};
  std::copy(lock_raw.begin(), lock_raw.end(), arr.begin());
  AC3_ASSIGN_OR_RETURN(TimePoint timelock, r.GetI64());
  if (!recipient.IsValid()) {
    return Status::InvalidArgument("HTLC recipient key invalid");
  }
  if (ctx.value == 0) {
    return Status::InvalidArgument("HTLC must lock a positive asset");
  }
  contract->set_recipient(recipient);
  contract->hashlock_ = crypto::HashlockCommitment(crypto::Hash256(arr));
  contract->timelock_ = timelock;
  contract->BindDeployment(ctx);
  return ContractPtr(contract);
}

bool HtlcContract::IsRedeemable(const Bytes& args,
                                const CallContext& ctx) const {
  (void)ctx;
  return hashlock_.VerifySecret(args);
}

bool HtlcContract::IsRefundable(const Bytes& args,
                                const CallContext& ctx) const {
  (void)args;
  return ctx.block_time >= timelock_;
}

}  // namespace ac3::contracts
