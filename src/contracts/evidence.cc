#include "src/contracts/evidence.h"

#include "src/chain/pow.h"

namespace ac3::contracts {

Bytes HeaderChainEvidence::Encode() const {
  ByteWriter w;
  w.PutU32(static_cast<uint32_t>(headers.size()));
  for (const chain::BlockHeader& header : headers) {
    w.PutBytes(header.Encode());
  }
  w.PutU32(target_index);
  w.PutU8(leaf_is_receipt ? 1 : 0);
  w.PutBytes(leaf);
  w.PutBytes(proof.Encode());
  return w.Take();
}

Result<HeaderChainEvidence> HeaderChainEvidence::Decode(const Bytes& encoded) {
  ByteReader r(encoded);
  HeaderChainEvidence ev;
  AC3_ASSIGN_OR_RETURN(uint32_t count, r.GetU32());
  for (uint32_t i = 0; i < count; ++i) {
    AC3_ASSIGN_OR_RETURN(Bytes header_bytes, r.GetBytes());
    ByteReader hr(header_bytes);
    AC3_ASSIGN_OR_RETURN(chain::BlockHeader header,
                         chain::BlockHeader::Decode(&hr));
    ev.headers.push_back(header);
  }
  AC3_ASSIGN_OR_RETURN(ev.target_index, r.GetU32());
  AC3_ASSIGN_OR_RETURN(uint8_t is_receipt, r.GetU8());
  ev.leaf_is_receipt = is_receipt != 0;
  AC3_ASSIGN_OR_RETURN(ev.leaf, r.GetBytes());
  AC3_ASSIGN_OR_RETURN(Bytes proof_bytes, r.GetBytes());
  AC3_ASSIGN_OR_RETURN(ev.proof, crypto::MerkleProof::Decode(proof_bytes));
  return ev;
}

Status VerifyHeaderChainEvidence(const chain::BlockHeader& checkpoint,
                                 uint32_t required_difficulty_bits,
                                 const HeaderChainEvidence& evidence,
                                 uint32_t min_confirmations) {
  if (evidence.headers.empty()) {
    return Status::VerificationFailed("evidence has no headers");
  }
  if (evidence.target_index >= evidence.headers.size()) {
    return Status::VerificationFailed("evidence target out of range");
  }

  // 1. Anchoring at the checkpoint.
  const chain::BlockHeader& first = evidence.headers[0];
  if (first.prev_hash != checkpoint.Hash()) {
    return Status::VerificationFailed(
        "evidence does not extend the stored stable block");
  }
  if (first.height != checkpoint.height + 1) {
    return Status::VerificationFailed("evidence height gap at checkpoint");
  }

  // 2–3. Linkage, heights, chain id, and per-header proof of work.
  for (size_t i = 0; i < evidence.headers.size(); ++i) {
    const chain::BlockHeader& header = evidence.headers[i];
    if (header.chain_id != checkpoint.chain_id) {
      return Status::VerificationFailed("evidence header for wrong chain");
    }
    if (header.difficulty_bits != required_difficulty_bits) {
      return Status::VerificationFailed("evidence header difficulty mismatch");
    }
    if (!chain::CheckProofOfWork(header)) {
      return Status::VerificationFailed("evidence header fails proof of work");
    }
    if (i > 0) {
      if (header.prev_hash != evidence.headers[i - 1].Hash()) {
        return Status::VerificationFailed("evidence headers do not link");
      }
      if (header.height != evidence.headers[i - 1].height + 1) {
        return Status::VerificationFailed("evidence heights not consecutive");
      }
    }
  }

  // 4. Merkle inclusion against the target header.
  const chain::BlockHeader& target = evidence.headers[evidence.target_index];
  const crypto::Hash256 leaf_hash = crypto::Hash256::Of(evidence.leaf);
  const crypto::Hash256& root =
      evidence.leaf_is_receipt ? target.receipt_root : target.tx_root;
  if (!crypto::VerifyMerkleProof(leaf_hash, evidence.proof, root)) {
    return Status::VerificationFailed("evidence merkle proof invalid");
  }

  // 5. Stability: the target must be buried under >= min_confirmations.
  if (evidence.ConfirmationsShown() < min_confirmations) {
    return Status::VerificationFailed(
        "evidence target not buried deep enough: " +
        std::to_string(evidence.ConfirmationsShown()) + " < " +
        std::to_string(min_confirmations));
  }
  return Status::OK();
}

}  // namespace ac3::contracts
