// The generic relay/validator contract of Section 4.3, Figure 6.
//
// "There exists a smart contract SC that gets deployed in the current head
//  block of blockchain2. SC has an initial state S1 and stores the header
//  of a stable block in blockchain1. SC's state is altered from S1 to S2 if
//  evidence is submitted that proves TX1 took place in blockchain1."
//
// This contract demonstrates the evidence machinery standalone (the AC3WN
// contracts embed the same checks); it also tracks the rolling checkpoint:
// after a successful proof the newest stable header from the evidence
// becomes the stored checkpoint, as a long-lived relay would do.
//
// Deploy payload: checkpoint header, validated-chain difficulty, and the
// id of the transaction of interest (TX1).

#ifndef AC3_CONTRACTS_RELAY_CONTRACT_H_
#define AC3_CONTRACTS_RELAY_CONTRACT_H_

#include <memory>
#include <string>

#include "src/chain/block.h"
#include "src/contracts/contract.h"
#include "src/contracts/evidence.h"

namespace ac3::contracts {

inline constexpr char kRelayKind[] = "RelaySC";
inline constexpr char kSubmitEvidenceFunction[] = "submit_evidence";

enum class RelayState : uint8_t {
  kS1 = 1,  ///< Waiting for proof of TX1.
  kS2 = 2,  ///< TX1 proven.
};

struct RelayInit {
  chain::BlockHeader checkpoint;
  uint32_t validated_difficulty_bits = 0;
  crypto::Hash256 interesting_tx;
  /// Depth the TX1 block must be buried under (the paper's stable depth).
  uint32_t required_depth = 0;

  Bytes Encode() const;
  static Result<RelayInit> Decode(const Bytes& payload);
};

class RelayContract : public Contract {
 public:
  static Result<ContractPtr> Create(const Bytes& payload,
                                    const DeployContext& ctx);

  std::string Kind() const override { return kRelayKind; }
  Bytes StateDigest() const override;

  RelayState state() const { return state_; }
  const chain::BlockHeader& checkpoint() const { return init_.checkpoint; }

  Result<CallOutcome> Call(const std::string& function, const Bytes& args,
                           const CallContext& ctx) const override;

 private:
  RelayInit init_;
  RelayState state_ = RelayState::kS1;
};

}  // namespace ac3::contracts

#endif  // AC3_CONTRACTS_RELAY_CONTRACT_H_
