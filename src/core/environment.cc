#include "src/core/environment.h"

#include <cassert>

namespace ac3::core {

Environment::Environment(uint64_t seed, sim::LatencyModel latency)
    : sim_(seed), network_(&sim_, latency), failures_(&sim_, &network_) {}

chain::ChainId Environment::AddChain(chain::ChainParams params,
                                     std::vector<chain::TxOutput> allocations,
                                     chain::MiningConfig mining) {
  const chain::ChainId id = static_cast<chain::ChainId>(chains_.size());
  params.id = id;
  ChainRuntime runtime;
  runtime.blockchain = std::make_unique<chain::Blockchain>(
      params, std::move(allocations));
  runtime.mempool = std::make_unique<chain::Mempool>();
  runtime.miners = std::make_unique<chain::MiningNetwork>(
      &sim_, runtime.blockchain.get(), runtime.mempool.get(), mining);
  runtime.gateway = network_.AddNode(params.name + "-gateway");
  chains_.push_back(std::move(runtime));
  return id;
}

chain::Blockchain* Environment::blockchain(chain::ChainId id) {
  if (id >= chains_.size()) return nullptr;
  return chains_[id].blockchain.get();
}

const chain::Blockchain* Environment::blockchain(chain::ChainId id) const {
  if (id >= chains_.size()) return nullptr;
  return chains_[id].blockchain.get();
}

chain::Mempool* Environment::mempool(chain::ChainId id) {
  if (id >= chains_.size()) return nullptr;
  return chains_[id].mempool.get();
}

chain::MiningNetwork* Environment::miners(chain::ChainId id) {
  if (id >= chains_.size()) return nullptr;
  return chains_[id].miners.get();
}

void Environment::StartMining() {
  for (ChainRuntime& runtime : chains_) runtime.miners->Start();
}

void Environment::StopMining() {
  for (ChainRuntime& runtime : chains_) runtime.miners->Stop();
}

sim::NodeId Environment::AddUserNode(const std::string& label) {
  return network_.AddNode(label);
}

void Environment::SubmitTransaction(sim::NodeId from, chain::ChainId id,
                                    const chain::Transaction& tx) {
  assert(id < chains_.size());
  chain::Mempool* pool = chains_[id].mempool.get();
  sim::Simulation* sim = &sim_;
  network_.Send(from, chains_[id].gateway, [pool, sim, tx]() {
    // Ignore duplicate-submission errors: gossip is at-least-once.
    (void)pool->Submit(tx, sim->Now());
  });
}

}  // namespace ac3::core
