#include "src/core/environment.h"

#include <cassert>
#include <span>
#include <vector>

#include "src/protocols/messages.h"

namespace ac3::core {

namespace {

/// Batched canonical cleanup on a head move: prunes from `pool` every
/// transaction included on the new canonical segment (head() down to its
/// lowest common ancestor with `old_head`), and — on a reorg — re-queues
/// the orphaned branch's user transactions that did not make it onto the
/// winning branch, so they are re-mined instead of silently lost (the
/// "disconnect pool" behavior of real nodes). Coinbase ids are harmlessly
/// absent from the pool and never re-queued.
void PruneIncludedOnHeadMove(const chain::Blockchain* chain,
                             chain::Mempool* pool,
                             const chain::BlockEntry& old_head) {
  const chain::BlockEntry* fork = chain->head();
  const chain::BlockEntry* other = &old_head;
  if (fork->height() > other->height()) {
    fork = chain->GetAncestor(fork, other->height());
  } else if (other->height() > fork->height()) {
    other = chain->GetAncestor(other, fork->height());
  }
  while (fork != other) {
    fork = fork->parent;
    other = other->parent;
  }
  // Ids on one branch are unique, so the flat list needs no dedup; the
  // span-form Prune skips the ordered-set build the old std::set path
  // paid on every canonical head move.
  std::vector<crypto::Hash256> included;
  for (const chain::BlockEntry* walk = chain->head(); walk != fork;
       walk = walk->parent) {
    for (const auto& [tx_id, index] : walk->tx_index) included.push_back(tx_id);
  }
  if (!included.empty()) {
    pool->Prune(std::span<const crypto::Hash256>(included));
  }
  // Disconnected (reorged-out) blocks: anything not re-included on the
  // winning branch goes back into the pool at its original arrival time.
  for (const chain::BlockEntry* walk = &old_head; walk != fork;
       walk = walk->parent) {
    for (const chain::Transaction& tx : walk->block.txs) {
      if (tx.type == chain::TxType::kCoinbase) continue;
      if (chain->TxOnBranch(*chain->head(), tx.Id())) continue;
      // Duplicate submissions are rejected by id; ignore them.
      (void)pool->Submit(tx, walk->arrival_time);
    }
  }
}

}  // namespace

Environment::Environment(uint64_t seed, sim::LatencyModel latency)
    : sim_(seed), network_(&sim_, latency), failures_(&sim_, &network_) {}

chain::ChainId Environment::AddChain(chain::ChainParams params,
                                     std::vector<chain::TxOutput> allocations,
                                     chain::MiningConfig mining) {
  const chain::ChainId id = static_cast<chain::ChainId>(chains_.size());
  params.id = id;
  ChainRuntime runtime;
  runtime.blockchain = std::make_unique<chain::Blockchain>(
      params, std::move(allocations));
  runtime.mempool = std::make_unique<chain::Mempool>();
  runtime.miners = std::make_unique<chain::MiningNetwork>(
      &sim_, runtime.blockchain.get(), runtime.mempool.get(), mining);
  runtime.gateway = network_.AddNode(params.name + "-gateway");
  // Batched mempool hygiene: included transactions leave the pool once per
  // canonical head movement, not via per-call-site cleanup. The raw
  // pointers outlive the subscription (the runtime owns both objects).
  chain::Blockchain* blockchain = runtime.blockchain.get();
  chain::Mempool* pool = runtime.mempool.get();
  blockchain->SubscribeHead([blockchain, pool](
                                const chain::BlockEntry& old_head) {
    PruneIncludedOnHeadMove(blockchain, pool, old_head);
  });
  chains_.push_back(std::move(runtime));
  return id;
}

chain::Blockchain* Environment::blockchain(chain::ChainId id) {
  if (id >= chains_.size()) return nullptr;
  return chains_[id].blockchain.get();
}

const chain::Blockchain* Environment::blockchain(chain::ChainId id) const {
  if (id >= chains_.size()) return nullptr;
  return chains_[id].blockchain.get();
}

chain::Mempool* Environment::mempool(chain::ChainId id) {
  if (id >= chains_.size()) return nullptr;
  return chains_[id].mempool.get();
}

chain::MiningNetwork* Environment::miners(chain::ChainId id) {
  if (id >= chains_.size()) return nullptr;
  return chains_[id].miners.get();
}

void Environment::StartMining() {
  for (ChainRuntime& runtime : chains_) runtime.miners->Start();
}

void Environment::StopMining() {
  for (ChainRuntime& runtime : chains_) runtime.miners->Stop();
}

sim::NodeId Environment::AddUserNode(const std::string& label) {
  return network_.AddNode(label);
}

void Environment::SubmitTransaction(sim::NodeId from, chain::ChainId id,
                                    const chain::Transaction& tx) {
  assert(id < chains_.size());
  chain::Mempool* pool = chains_[id].mempool.get();
  sim::Simulation* sim = &sim_;
  // Transaction gossip rides the typed message path so the per-message
  // fault model (drop/duplicate/delay) applies to every protocol's chain
  // traffic, not only to the engines' off-chain exchanges. The payload
  // carries the wire size, not the transaction itself — the handler
  // closure holds the real object, exactly like the old closure path.
  proto::Message msg;
  msg.swap_id = tx.Id();
  msg.seq = next_gossip_seq_++;
  msg.sender = from;
  msg.receiver = chains_[id].gateway;
  msg.payload = proto::TxSubmitPayload{
      id, static_cast<uint32_t>(tx.Encode().size())};
  network_.SendMessage(msg, [pool, sim, tx](const proto::Message&) {
    // Ignore duplicate-submission errors: gossip is at-least-once, and a
    // fault-duplicated delivery is rejected by transaction id.
    (void)pool->Submit(tx, sim->Now());
  });
}

}  // namespace ac3::core
