#include "src/core/scenario.h"

namespace ac3::core {

uint64_t ScenarioParticipantSeed(int i) {
  return 0x5eed0000ull + static_cast<uint64_t>(i);
}

namespace {

std::vector<chain::TxOutput> FundAll(const std::vector<crypto::PublicKey>& pks,
                                     chain::Amount each) {
  std::vector<chain::TxOutput> out;
  out.reserve(pks.size());
  for (const crypto::PublicKey& pk : pks) {
    out.push_back(chain::TxOutput{each, pk});
  }
  return out;
}

}  // namespace

ScenarioWorld::ScenarioWorld(ScenarioOptions options)
    : options_(options), env_(options.seed) {
  std::vector<crypto::PublicKey> pks;
  for (int i = 0; i < options.participants; ++i) {
    pks.push_back(
        crypto::KeyPair::FromSeed(ScenarioParticipantSeed(i)).public_key());
  }
  chain::MiningConfig mining;
  mining.miner_count = options.miner_count;
  mining.max_propagation_delay = options.max_propagation_delay;
  for (int c = 0; c < options.asset_chains; ++c) {
    chain::ChainParams params = options.asset_params;
    // Built with append rather than operator+ to sidestep GCC 12's
    // -Wrestrict false positive on rvalue string concatenation at -O3.
    params.name = "Asset";
    params.name += std::to_string(c);
    asset_chains_.push_back(
        env_.AddChain(params, FundAll(pks, options.funding), mining));
  }
  if (options.witness_chain) {
    witness_chain_ = env_.AddChain(options.witness_params,
                                   FundAll(pks, options.funding), mining);
  }
  for (int i = 0; i < options.participants; ++i) {
    // Append form for the same -Wrestrict reason as the chain names above.
    std::string name = "P";
    name += std::to_string(i);
    participants_.push_back(std::make_unique<protocols::Participant>(
        std::move(name), ScenarioParticipantSeed(i), &env_));
  }
}

std::vector<protocols::Participant*> ScenarioWorld::all_participants() {
  std::vector<protocols::Participant*> out;
  out.reserve(participants_.size());
  for (auto& p : participants_) out.push_back(p.get());
  return out;
}

std::vector<crypto::PublicKey> ScenarioWorld::participant_keys() const {
  std::vector<crypto::PublicKey> out;
  out.reserve(participants_.size());
  for (const auto& p : participants_) out.push_back(p->pk());
  return out;
}

}  // namespace ac3::core
