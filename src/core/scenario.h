// Ready-made multi-blockchain worlds: the public facade used by examples,
// benchmarks, and tests to spin up "N asset chains + a witness chain +
// funded participants" in one line.
//
// A ScenarioWorld owns an Environment plus the Participant objects; chain 0
// .. N-1 are asset chains and (optionally) one more chain acts as the
// witness network. Every participant is funded on every chain so any graph
// over the participants is executable.

#ifndef AC3_CORE_SCENARIO_H_
#define AC3_CORE_SCENARIO_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/environment.h"
#include "src/protocols/participant.h"

namespace ac3::core {

struct ScenarioOptions {
  int asset_chains = 2;
  int participants = 2;
  chain::Amount funding = 5000;
  uint64_t seed = 7;
  /// When false the world has only asset chains (HTLC baselines need no
  /// witness; callers may also witness on an asset chain, Section 6.4).
  bool witness_chain = true;
  int miner_count = 3;
  Duration max_propagation_delay = Milliseconds(5);
  /// Base parameters cloned per asset chain (name/id overwritten).
  chain::ChainParams asset_params = chain::TestChainParams();
  chain::ChainParams witness_params = chain::TestWitnessParams();
};

/// Key seed for participant `i`; shared between genesis allocations and the
/// Participant identities.
uint64_t ScenarioParticipantSeed(int i);

class ScenarioWorld {
 public:
  explicit ScenarioWorld(ScenarioOptions options = ScenarioOptions{});

  Environment* env() { return &env_; }
  chain::ChainId asset_chain(int i) const { return asset_chains_.at(i); }
  const std::vector<chain::ChainId>& asset_chains() const {
    return asset_chains_;
  }
  /// Only valid when options.witness_chain was true.
  chain::ChainId witness_chain() const { return witness_chain_; }
  protocols::Participant* participant(int i) {
    return participants_.at(i).get();
  }
  std::vector<protocols::Participant*> all_participants();
  std::vector<crypto::PublicKey> participant_keys() const;
  const ScenarioOptions& options() const { return options_; }

  void StartMining() { env_.StartMining(); }

 private:
  ScenarioOptions options_;
  Environment env_;
  std::vector<chain::ChainId> asset_chains_;
  chain::ChainId witness_chain_ = 0;
  std::vector<std::unique_ptr<protocols::Participant>> participants_;
};

}  // namespace ac3::core

#endif  // AC3_CORE_SCENARIO_H_
