// The simulation environment: chains + miners + network + failures in one
// place — the "multi-blockchain world" every experiment runs in.
//
// An Environment owns the discrete-event kernel, the message-passing
// network (participants talk to chains through it, so submissions suffer
// latency and crash/partition loss), and any number of blockchains, each
// with its own mempool and Poisson mining network.
//
// Mempool hygiene is event-driven: every chain's mempool is subscribed to
// its blockchain's canonical-head movements, so transactions included on
// the canonical branch are pruned in one batch per head move (extension or
// reorg) instead of by ad-hoc calls. Transactions reorged *off* the
// canonical branch are not re-queued — protocol engines re-gossip their
// own unconfirmed transactions, which is the at-least-once submission
// model the simulator already assumes.

#ifndef AC3_CORE_ENVIRONMENT_H_
#define AC3_CORE_ENVIRONMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/chain/blockchain.h"
#include "src/chain/mempool.h"
#include "src/chain/mining.h"
#include "src/sim/failure.h"
#include "src/sim/network.h"
#include "src/sim/simulation.h"

namespace ac3::core {

class Environment {
 public:
  explicit Environment(
      uint64_t seed,
      sim::LatencyModel latency = sim::LatencyModel{Milliseconds(20),
                                                    Milliseconds(10)});

  sim::Simulation* sim() { return &sim_; }
  sim::Network* network() { return &network_; }
  sim::FailureInjector* failures() { return &failures_; }

  /// Creates a blockchain; `params.id` is overwritten with the assigned id.
  /// `allocations` fund the genesis block (experiment participants).
  chain::ChainId AddChain(chain::ChainParams params,
                          std::vector<chain::TxOutput> allocations,
                          chain::MiningConfig mining = chain::MiningConfig{});

  size_t chain_count() const { return chains_.size(); }
  /// Accessors return nullptr for unknown chain ids.
  chain::Blockchain* blockchain(chain::ChainId id);
  const chain::Blockchain* blockchain(chain::ChainId id) const;
  chain::Mempool* mempool(chain::ChainId id);
  chain::MiningNetwork* miners(chain::ChainId id);

  /// Starts / stops every chain's miners.
  void StartMining();
  void StopMining();

  /// Registers an end-user endpoint on the network.
  sim::NodeId AddUserNode(const std::string& label);

  /// Sends `tx` from `from` to the chain's gateway as a typed kTxSubmit
  /// envelope; it reaches the mempool after network latency unless dropped
  /// (crash / partition / injected message loss).
  void SubmitTransaction(sim::NodeId from, chain::ChainId id,
                         const chain::Transaction& tx);

 private:
  struct ChainRuntime {
    std::unique_ptr<chain::Blockchain> blockchain;
    std::unique_ptr<chain::Mempool> mempool;
    std::unique_ptr<chain::MiningNetwork> miners;
    sim::NodeId gateway = 0;
  };

  sim::Simulation sim_;
  sim::Network network_;
  sim::FailureInjector failures_;
  std::vector<ChainRuntime> chains_;
  /// Envelope seq for gossip submissions (informational — the mempool
  /// dedups by transaction id, not by seq).
  uint64_t next_gossip_seq_ = 1;
};

}  // namespace ac3::core

#endif  // AC3_CORE_ENVIRONMENT_H_
