// Byte-string utilities and canonical (de)serialization.
//
// Every hashed or signed structure in the system (transactions, block
// headers, AC2T graphs, contract calls) is first converted to a canonical
// little-endian byte encoding via ByteWriter so that hashes and signatures
// are well-defined and reproducible. ByteReader is the Status-returning
// inverse used when validating network messages and evidence.

#ifndef AC3_COMMON_BYTES_H_
#define AC3_COMMON_BYTES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace ac3 {

/// Owned byte string; the universal currency between modules.
using Bytes = std::vector<uint8_t>;

/// Lower-case hex encoding of `data` ("" for empty input).
std::string ToHex(const Bytes& data);
/// Hex encoding of an arbitrary buffer.
std::string ToHex(const uint8_t* data, size_t len);

/// Parses lower/upper-case hex. Fails on odd length or non-hex characters.
Result<Bytes> FromHex(const std::string& hex);

/// Appends `suffix` to `dst`.
void AppendBytes(Bytes* dst, const Bytes& suffix);

/// Builds canonical little-endian encodings. All multi-byte integers are
/// fixed-width little-endian; variable-length fields carry a u32 length
/// prefix. This is intentionally simple and unambiguous — one encoding per
/// value — because the encodings are inputs to SHA-256.
class ByteWriter {
 public:
  void PutU8(uint8_t v);
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v);
  /// Length-prefixed byte string.
  void PutBytes(const Bytes& b);
  /// Length-prefixed UTF-8 string.
  void PutString(const std::string& s);
  /// Raw bytes with NO length prefix (for fixed-width fields like hashes).
  void PutRaw(const uint8_t* data, size_t len);
  void PutRaw(const Bytes& b);

  const Bytes& bytes() const { return buf_; }
  Bytes Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Status-returning decoder for ByteWriter encodings.
class ByteReader {
 public:
  explicit ByteReader(const Bytes& data) : data_(data) {}

  Result<uint8_t> GetU8();
  Result<uint16_t> GetU16();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<int64_t> GetI64();
  /// Reads a length-prefixed byte string.
  Result<Bytes> GetBytes();
  /// Reads a length-prefixed string.
  Result<std::string> GetString();
  /// Reads exactly `len` raw bytes.
  Result<Bytes> GetRaw(size_t len);

  /// True when every byte has been consumed.
  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  Status Need(size_t n) const;

  const Bytes& data_;
  size_t pos_ = 0;
};

}  // namespace ac3

#endif  // AC3_COMMON_BYTES_H_
