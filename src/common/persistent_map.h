// PersistentMap: an immutable-node, copy-on-write ordered map.
//
// This is the structure behind the engine's O(1) ledger snapshots: every
// BlockEntry keeps the full post-state of its branch, and block assembly
// takes a scratch copy per candidate transaction. With std::map those
// copies cost O(state size) each — quadratic over a growing chain. Here a
// copy is a shared root pointer; mutation path-copies O(log n) nodes of a
// weight-balanced search tree, so divergent snapshots (forks, scratch
// states) share all unmodified structure.
//
// Determinism: iteration is strictly in key order (same order as std::map
// with std::less), independent of insertion history, so every fold over a
// ledger state is reproducible bit-for-bit.
//
// The API is the std::map subset the ledger needs — Find/At/Put/Erase plus
// const in-order iteration (range-for compatible). Iterators are
// invalidated by any mutation of the *handle* they came from; snapshots
// taken before the mutation remain valid and unchanged (that is the
// point).
//
// Allocation: nodes carry an intrusive reference count and live in
// NodePool slabs (src/common/arena.h) instead of shared_ptr control
// blocks, so the path-copy hot loop costs a free-list pop per node rather
// than a malloc of node + control block, and a release never touches a
// separate control-block cache line. The count is atomic because divergent
// snapshots *share structure across threads*: parallel fork validation
// (Blockchain::SubmitBlocks) and the sweep's worker pool both copy and
// mutate sibling snapshots concurrently, and every path copy re-references
// the untouched subtrees of the shared original. Increments are relaxed
// (publication of the nodes themselves happens-before any handoff);
// decrements are acq_rel so the destroying thread observes all writes.

#ifndef AC3_COMMON_PERSISTENT_MAP_H_
#define AC3_COMMON_PERSISTENT_MAP_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "src/common/arena.h"

/// Core utilities shared by every module (the dependency root).
namespace ac3 {

/// Immutable-node, copy-on-write ordered map (Adams weight-balanced
/// tree): O(1) snapshot copies, O(log n) mutation via path copying,
/// std::map-identical key-order iteration. Nodes are pool-allocated with
/// intrusive atomic refcounts, so snapshots may be copied, mutated, and
/// released concurrently on different threads as long as each *handle* is
/// used by one thread at a time.
template <typename K, typename V>
class PersistentMap {
 private:
  struct Node;  // Defined below; declared early for the iterator.

 public:
  /// An empty map (no allocation until the first Put).
  PersistentMap() = default;

  /// Number of keys, maintained per node (O(1)).
  size_t size() const { return Size(root_); }
  /// True when no keys are present.
  bool empty() const { return root_ == nullptr; }

  /// Pointer to the value for `key`, or nullptr when absent. The pointer
  /// is stable for the lifetime of any snapshot still holding the node.
  const V* Find(const K& key) const {
    const Node* walk = root_.get();
    while (walk != nullptr) {
      if (key < walk->key) {
        walk = walk->left.get();
      } else if (walk->key < key) {
        walk = walk->right.get();
      } else {
        return &walk->value;
      }
    }
    return nullptr;
  }

  /// True when `key` is present.
  bool Contains(const K& key) const { return Find(key) != nullptr; }

  /// Accessor for keys known to exist; throws like std::map::at so a
  /// missing key stays a defined failure in release builds too.
  const V& at(const K& key) const {
    const V* value = Find(key);
    if (value == nullptr) throw std::out_of_range("PersistentMap::at");
    return *value;
  }

  /// Inserts or replaces `key`. Mutates only this handle: other copies of
  /// the map keep observing the previous version.
  void Put(const K& key, V value) {
    root_ = Insert(root_, key, std::move(value));
  }

  /// Removes `key`; returns whether it was present.
  bool Erase(const K& key) {
    if (!Contains(key)) return false;  // Avoid path-copying on a miss.
    root_ = Remove(root_, key);
    return true;
  }

  /// In-order traversal (key order), cheapest way to fold over the map.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    ForEachNode(root_.get(), fn);
  }

  /// Structural equality: same keys mapping to equal values (element-wise,
  /// in key order).
  bool operator==(const PersistentMap& other) const {
    if (size() != other.size()) return false;
    const_iterator a = begin();
    const_iterator b = other.begin();
    for (; a != end(); ++a, ++b) {
      if ((*a).first != (*b).first || !((*a).second == (*b).second)) {
        return false;
      }
    }
    return true;
  }

  // ---- in-order const iteration (range-for support) ------------------------

  /// Forward in-order iterator over (key, value) references. Valid as
  /// long as the handle it came from is neither mutated nor destroyed;
  /// snapshots taken earlier are unaffected by later mutations.
  class const_iterator {
   public:
    /// Dereference result: a pair of references into the tree.
    using value_type = std::pair<const K&, const V&>;

    /// The past-the-end iterator.
    const_iterator() = default;

    /// Current (key, value) pair.
    value_type operator*() const {
      const Node* node = stack_.back();
      return {node->key, node->value};
    }

    /// Advances to the next key in order.
    const_iterator& operator++() {
      const Node* node = stack_.back();
      stack_.pop_back();
      PushLeftSpine(node->right.get());
      return *this;
    }

    /// Iterators are equal when positioned on the same node (or both at
    /// the end).
    bool operator==(const const_iterator& other) const {
      if (stack_.empty() || other.stack_.empty()) {
        return stack_.empty() == other.stack_.empty();
      }
      return stack_.back() == other.stack_.back();
    }
    /// Negation of operator==.
    bool operator!=(const const_iterator& other) const {
      return !(*this == other);
    }

   private:
    friend class PersistentMap;
    void PushLeftSpine(const Node* node) {
      for (; node != nullptr; node = node->left.get()) {
        stack_.push_back(node);
      }
    }
    std::vector<const Node*> stack_;
  };

  /// Iterator on the smallest key (== end() when empty).
  const_iterator begin() const {
    const_iterator it;
    it.PushLeftSpine(root_.get());
    return it;
  }
  /// The past-the-end iterator.
  const_iterator end() const { return const_iterator(); }

 private:
  class NodeRef;
  using Ptr = NodeRef;

  struct Node {
    Node(const K& k, V v, NodeRef l, NodeRef r, size_t s)
        : key(k),
          value(std::move(v)),
          left(std::move(l)),
          right(std::move(r)),
          size(s) {}

    K key;
    V value;
    Ptr left;
    Ptr right;
    size_t size;
    /// Intrusive count; starts at 1 for the reference Make() returns.
    /// Mutable so shared (const) nodes can still be re-referenced.
    mutable std::atomic<uint32_t> refs{1};
  };

  /// Intrusive shared reference to an immutable, pool-resident Node — the
  /// shared_ptr<const Node> subset the tree needs, minus the control
  /// block, weak count, and per-node malloc.
  class NodeRef {
   public:
    NodeRef() = default;
    NodeRef(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

    NodeRef(const NodeRef& other) : node_(other.node_) {
      if (node_ != nullptr) {
        node_->refs.fetch_add(1, std::memory_order_relaxed);
      }
    }
    NodeRef(NodeRef&& other) noexcept : node_(other.node_) {
      other.node_ = nullptr;
    }
    NodeRef& operator=(const NodeRef& other) {
      NodeRef copy(other);
      std::swap(node_, copy.node_);
      return *this;
    }
    NodeRef& operator=(NodeRef&& other) noexcept {
      std::swap(node_, other.node_);
      return *this;
    }
    ~NodeRef() { Release(); }

    const Node* get() const { return node_; }
    const Node* operator->() const { return node_; }
    const Node& operator*() const { return *node_; }
    bool operator==(std::nullptr_t) const { return node_ == nullptr; }
    bool operator!=(std::nullptr_t) const { return node_ != nullptr; }
    explicit operator bool() const { return node_ != nullptr; }

    /// Takes ownership of a node whose count is already 1.
    static NodeRef Adopt(const Node* node) {
      NodeRef ref;
      ref.node_ = node;
      return ref;
    }

   private:
    void Release() {
      if (node_ == nullptr) return;
      if (node_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Destroying the node releases its children in turn; recursion
        // depth is bounded by the (balanced) tree height.
        Node* dying = const_cast<Node*>(node_);
        dying->~Node();
        NodePool<Node>::Deallocate(dying);
      }
      node_ = nullptr;
    }

    const Node* node_ = nullptr;
  };

  static size_t Size(const Ptr& node) { return node ? node->size : 0; }
  /// Weight = size + 1, the standard trick that keeps the balance
  /// inequalities valid for empty subtrees.
  static size_t Weight(const Ptr& node) { return Size(node) + 1; }

  static Ptr Make(Ptr left, const K& key, V value, Ptr right) {
    const size_t size = 1 + Size(left) + Size(right);
    return NodeRef::Adopt(new (NodePool<Node>::Allocate()) Node(
        key, std::move(value), std::move(left), std::move(right), size));
  }

  static Ptr RotateLeft(const Ptr& left, const K& key, const V& value,
                        const Ptr& right) {
    return Make(Make(left, key, value, right->left), right->key, right->value,
                right->right);
  }
  static Ptr RotateLeftDouble(const Ptr& left, const K& key, const V& value,
                              const Ptr& right) {
    const Ptr& pivot = right->left;
    return Make(Make(left, key, value, pivot->left), pivot->key, pivot->value,
                Make(pivot->right, right->key, right->value, right->right));
  }
  static Ptr RotateRight(const Ptr& left, const K& key, const V& value,
                         const Ptr& right) {
    return Make(left->left, left->key, left->value,
                Make(left->right, key, value, right));
  }
  static Ptr RotateRightDouble(const Ptr& left, const K& key, const V& value,
                               const Ptr& right) {
    const Ptr& pivot = left->right;
    return Make(Make(left->left, left->key, left->value, pivot->left),
                pivot->key, pivot->value,
                Make(pivot->right, key, value, right));
  }

  /// Rebuilds a node whose children differ by at most one insertion or
  /// removal, restoring the weight-balance invariant
  /// (Adams-style weight-balanced tree, delta = 3, gamma = 2).
  static Ptr Balance(Ptr left, const K& key, V value, Ptr right) {
    const size_t lw = Weight(left);
    const size_t rw = Weight(right);
    if (lw + rw <= 2) return Make(std::move(left), key, std::move(value),
                                  std::move(right));
    if (rw > 3 * lw) {
      return Weight(right->left) < 2 * Weight(right->right)
                 ? RotateLeft(left, key, value, right)
                 : RotateLeftDouble(left, key, value, right);
    }
    if (lw > 3 * rw) {
      return Weight(left->right) < 2 * Weight(left->left)
                 ? RotateRight(left, key, value, right)
                 : RotateRightDouble(left, key, value, right);
    }
    return Make(std::move(left), key, std::move(value), std::move(right));
  }

  static Ptr Insert(const Ptr& node, const K& key, V value) {
    if (node == nullptr) return Make(nullptr, key, std::move(value), nullptr);
    if (key < node->key) {
      return Balance(Insert(node->left, key, std::move(value)), node->key,
                     node->value, node->right);
    }
    if (node->key < key) {
      return Balance(node->left, node->key, node->value,
                     Insert(node->right, key, std::move(value)));
    }
    return Make(node->left, key, std::move(value), node->right);  // Replace.
  }

  /// Removes the minimum of `node` (must be non-null), exporting it.
  static Ptr PopMin(const Ptr& node, const K** min_key, const V** min_value) {
    if (node->left == nullptr) {
      *min_key = &node->key;
      *min_value = &node->value;
      return node->right;
    }
    return Balance(PopMin(node->left, min_key, min_value), node->key,
                   node->value, node->right);
  }

  /// `key` is known to exist under `node`.
  static Ptr Remove(const Ptr& node, const K& key) {
    if (key < node->key) {
      return Balance(Remove(node->left, key), node->key, node->value,
                     node->right);
    }
    if (node->key < key) {
      return Balance(node->left, node->key, node->value,
                     Remove(node->right, key));
    }
    if (node->left == nullptr) return node->right;
    if (node->right == nullptr) return node->left;
    const K* succ_key = nullptr;
    const V* succ_value = nullptr;
    Ptr right = PopMin(node->right, &succ_key, &succ_value);
    return Balance(node->left, *succ_key, *succ_value, std::move(right));
  }

  template <typename Fn>
  static void ForEachNode(const Node* node, Fn& fn) {
    if (node == nullptr) return;
    ForEachNode(node->left.get(), fn);
    fn(node->key, node->value);
    ForEachNode(node->right.get(), fn);
  }

  Ptr root_;
};

}  // namespace ac3

#endif  // AC3_COMMON_PERSISTENT_MAP_H_
