#include "src/common/random.h"

#include <cassert>
#include <cmath>

namespace ac3 {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling over the largest multiple of bound.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

uint64_t Rng::NextInRange(uint64_t lo, uint64_t hi) {
  assert(lo <= hi);
  const uint64_t span = hi - lo;
  if (span == UINT64_MAX) return NextU64();
  return lo + NextBelow(span + 1);
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextExponential(double mean) {
  assert(mean > 0);
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

Bytes Rng::NextBytes(size_t n) {
  Bytes out;
  out.reserve(n);
  while (out.size() < n) {
    uint64_t r = NextU64();
    for (int i = 0; i < 8 && out.size() < n; ++i) {
      out.push_back(static_cast<uint8_t>(r >> (8 * i)));
    }
  }
  return out;
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace ac3
