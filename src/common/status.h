// Status / Result<T>: value-based error handling (Arrow / RocksDB idiom).
//
// Validation failures in a blockchain are ordinary data ("this transaction is
// invalid"), not exceptional control flow, so every fallible operation in
// this library returns a Status or a Result<T> instead of throwing.

#ifndef AC3_COMMON_STATUS_H_
#define AC3_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace ac3 {

/// Machine-readable category of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Caller passed a malformed value.
  kNotFound,          ///< Referenced entity does not exist.
  kAlreadyExists,     ///< Uniqueness constraint violated (e.g. double register).
  kFailedPrecondition,///< `requires(...)` guard of a contract/protocol failed.
  kVerificationFailed,///< A signature, proof-of-work, or evidence check failed.
  kOutOfRange,        ///< Index / depth / time out of the valid range.
  kUnavailable,       ///< Target node is crashed or partitioned away.
  kInternal,          ///< Invariant breach inside the library (a bug).
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A cheap, copyable success-or-error value.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status VerificationFailed(std::string msg) {
    return Status(StatusCode::kVerificationFailed, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Either a value of type T or an error Status. Accessing the value of an
/// errored Result is a programming error (asserts in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;             // OK iff value_ holds a value.
  std::optional<T> value_;
};

/// Propagates a non-OK Status out of the enclosing function.
#define AC3_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::ac3::Status _ac3_status = (expr);        \
    if (!_ac3_status.ok()) return _ac3_status; \
  } while (0)

#define AC3_CONCAT_IMPL(a, b) a##b
#define AC3_CONCAT(a, b) AC3_CONCAT_IMPL(a, b)

#define AC3_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value();

/// Evaluates a Result expression; on error returns its Status, otherwise
/// moves the value into `lhs` (which may be a declaration).
#define AC3_ASSIGN_OR_RETURN(lhs, expr) \
  AC3_ASSIGN_OR_RETURN_IMPL(AC3_CONCAT(_ac3_result_, __LINE__), lhs, expr)

}  // namespace ac3

#endif  // AC3_COMMON_STATUS_H_
