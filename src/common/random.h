// Deterministic pseudo-random number generation (xoshiro256** + SplitMix64).
//
// Every stochastic choice in the simulator — mining inter-arrival times,
// network jitter, failure injection, workload generation — draws from an Rng
// seeded explicitly by the experiment, so runs are reproducible bit-for-bit.
// std::mt19937 is avoided because its distributions are not stable across
// standard-library implementations.

#ifndef AC3_COMMON_RANDOM_H_
#define AC3_COMMON_RANDOM_H_

#include <cstdint>

#include "src/common/bytes.h"

namespace ac3 {

/// xoshiro256** generator. Small, fast, and good enough statistical quality
/// for simulation workloads (NOT for key generation in a real deployment;
/// see DESIGN.md on toy crypto parameters).
class Rng {
 public:
  /// Seeds the four 64-bit lanes from `seed` via SplitMix64.
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform in [0, bound) using rejection sampling (unbiased). bound > 0.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t NextInRange(uint64_t lo, uint64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Exponentially distributed sample with the given mean (> 0). Used for
  /// Poisson-process mining inter-arrival times.
  double NextExponential(double mean);

  /// Bernoulli trial with probability p in [0, 1].
  bool NextBool(double p);

  /// Fills `n` random bytes.
  Bytes NextBytes(size_t n);

  /// Derives an independent child generator; stream-splits so that
  /// subsystems (per-chain miners, per-node jitter) do not share state.
  Rng Fork();

 private:
  uint64_t s_[4];
};

/// SplitMix64 step; also used standalone to derive deterministic per-entity
/// values (e.g. per-(block, node) propagation delays) from hashes.
uint64_t SplitMix64(uint64_t* state);

}  // namespace ac3

#endif  // AC3_COMMON_RANDOM_H_
