// WorkerPool: the one shared fan-out primitive.
//
// Both parallel substrates in the system — the chain's batch fork
// validation (Blockchain::SubmitBlocks) and the sweep grid executor
// (runner::SweepRunner / runner::ParallelFor) — have the same shape: a
// round of `n` independent tasks, workers claiming indices from a shared
// counter, with the caller blocked until the round fully drains. They used
// to carry two separate implementations (a barrier pool in blockchain.cc,
// a spawn-and-join loop in sweep_runner.cc); this class is the single
// primitive both now run on.
//
// Design points, inherited from the proven ValidationPool:
//
//   * **Persistent + lazily spawned.** No thread is created until the
//     first round that actually has parallel work (>= 2 indices and >= 2
//     resolved threads); later rounds reuse the same workers, so a
//     narrow round costs two barrier hops instead of a create/join cycle.
//     The gang grows monotonically (by rebuild) when a wider round
//     arrives, so an 8-wide round on a 32-thread pool never parks 31
//     idle barrier participants.
//   * **Barrier-synchronized rounds.** One std::barrier opens the round
//     (publishing the task, count, and cursor to the workers) and closes
//     it (publishing every worker's writes back to the caller), so the
//     round body needs no further synchronization beyond the index
//     counter.
//   * **Exceptions surface on the caller.** A throwing task no longer
//     escapes a worker thread into std::terminate: the first exception is
//     captured, the round stops claiming further indices, and the
//     exception is rethrown from ParallelFor on the calling thread —
//     matching what an inline serial loop would have done.
//   * **One thread-count policy.** `threads <= 0` resolves to
//     hardware_concurrency() clamped to >= 1 in exactly one place
//     (ResolveThreads), fixing the historical `hardware_concurrency() ==
//     0` hole that left SubmitBlocks with zero workers.

#ifndef AC3_COMMON_WORKER_POOL_H_
#define AC3_COMMON_WORKER_POOL_H_

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>

namespace ac3::common {

/// A persistent, lazily-spawned, barrier-synchronized worker pool running
/// index-claiming ParallelFor rounds (see the file comment for the design
/// contract). One instance serves many rounds; rounds do not nest and a
/// single instance must not run rounds from two threads at once.
class WorkerPool {
 public:
  /// The single thread-count policy: values > 0 pass through untouched;
  /// `threads <= 0` selects std::thread::hardware_concurrency() clamped
  /// to >= 1 (the standard allows it to report 0).
  static int ResolveThreads(int threads);

  /// Creates a pool whose rounds run on ResolveThreads(threads) threads
  /// (the calling thread included — N threads means N - 1 spawned
  /// workers, created lazily on the first round that needs them).
  explicit WorkerPool(int threads = 0);

  /// Joins the spawned workers (if any). Must not race a running round.
  ~WorkerPool();

  /// Workers hold a pointer to `this`: not copyable.
  WorkerPool(const WorkerPool&) = delete;
  /// Workers hold a pointer to `this`: not assignable.
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// The resolved thread count (>= 1), fixed at construction.
  int threads() const { return threads_; }

  /// Executes fn(0..n-1), each index exactly once, across the pool; the
  /// calling thread drains alongside the workers and the call returns
  /// only when the round is fully finished. `fn` must be safe to call
  /// concurrently for distinct indices. If any invocation throws, the
  /// round stops claiming further indices (already-claimed ones still
  /// run) and the first captured exception is rethrown here, on the
  /// caller. `n <= 1` or a 1-thread pool runs inline with no worker
  /// involvement.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  /// A fixed-width gang of workers parked on a shared barrier (defined in
  /// the .cc; rebuilt — rarely, and at most threads() - 1 times — when a
  /// wider round arrives).
  class Gang;

  /// Ensures at least `want` spawned workers, rebuilding the gang if the
  /// current one is narrower.
  void EnsureWidth(int want);

  /// Claims indices from cursor_ until the round is exhausted (or a task
  /// failure stops the round), capturing the first exception.
  void Drain();

  const int threads_;  ///< Resolved thread count (>= 1).
  std::unique_ptr<Gang> gang_;  ///< Spawned workers; null until needed.
  int gang_width_ = 0;          ///< Workers in gang_ (0 = none spawned).

  // Round state: written by ParallelFor before the opening barrier,
  // read by workers during the round (the barrier provides the ordering).
  const std::function<void(size_t)>* task_ = nullptr;  ///< Current round's fn.
  std::atomic<size_t> cursor_{0};    ///< Next unclaimed index.
  size_t count_ = 0;                 ///< Indices in the current round.
  std::atomic<bool> failed_{false};  ///< A task threw; stop claiming.
  std::exception_ptr error_;         ///< First captured exception.
  std::mutex error_mu_;              ///< Guards error_ among workers.
};

}  // namespace ac3::common

#endif  // AC3_COMMON_WORKER_POOL_H_
