#include "src/common/bytes.h"

namespace ac3 {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string ToHex(const uint8_t* data, size_t len) {
  std::string out;
  out.reserve(len * 2);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kHexDigits[data[i] >> 4]);
    out.push_back(kHexDigits[data[i] & 0x0f]);
  }
  return out;
}

std::string ToHex(const Bytes& data) { return ToHex(data.data(), data.size()); }

Result<Bytes> FromHex(const std::string& hex) {
  if (hex.size() % 2 != 0) {
    return Status::InvalidArgument("hex string has odd length");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexValue(hex[i]);
    int lo = HexValue(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("non-hex character in input");
    }
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

void AppendBytes(Bytes* dst, const Bytes& suffix) {
  dst->insert(dst->end(), suffix.begin(), suffix.end());
}

void ByteWriter::PutU8(uint8_t v) { buf_.push_back(v); }

void ByteWriter::PutU16(uint16_t v) {
  buf_.push_back(static_cast<uint8_t>(v));
  buf_.push_back(static_cast<uint8_t>(v >> 8));
}

void ByteWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteWriter::PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }

void ByteWriter::PutBytes(const Bytes& b) {
  PutU32(static_cast<uint32_t>(b.size()));
  PutRaw(b);
}

void ByteWriter::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::PutRaw(const uint8_t* data, size_t len) {
  buf_.insert(buf_.end(), data, data + len);
}

void ByteWriter::PutRaw(const Bytes& b) { PutRaw(b.data(), b.size()); }

Status ByteReader::Need(size_t n) const {
  if (pos_ + n > data_.size()) {
    return Status::OutOfRange("buffer underrun while decoding");
  }
  return Status::OK();
}

Result<uint8_t> ByteReader::GetU8() {
  AC3_RETURN_IF_ERROR(Need(1));
  return data_[pos_++];
}

Result<uint16_t> ByteReader::GetU16() {
  AC3_RETURN_IF_ERROR(Need(2));
  uint16_t v = static_cast<uint16_t>(data_[pos_]) |
               static_cast<uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

Result<uint32_t> ByteReader::GetU32() {
  AC3_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> ByteReader::GetU64() {
  AC3_RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<int64_t> ByteReader::GetI64() {
  AC3_ASSIGN_OR_RETURN(uint64_t v, GetU64());
  return static_cast<int64_t>(v);
}

Result<Bytes> ByteReader::GetBytes() {
  AC3_ASSIGN_OR_RETURN(uint32_t len, GetU32());
  return GetRaw(len);
}

Result<std::string> ByteReader::GetString() {
  AC3_ASSIGN_OR_RETURN(Bytes b, GetBytes());
  return std::string(b.begin(), b.end());
}

Result<Bytes> ByteReader::GetRaw(size_t len) {
  AC3_RETURN_IF_ERROR(Need(len));
  Bytes out(data_.begin() + pos_, data_.begin() + pos_ + len);
  pos_ += len;
  return out;
}

}  // namespace ac3
