// Virtual time for the discrete-event simulator.
//
// All protocol and blockchain timing (block intervals, timelocks, the
// paper's Δ) is expressed in simulated milliseconds. Using a strong typedef
// pair (TimePoint / Duration as int64 ms) keeps arithmetic obvious while
// preventing accidental mixing with wall-clock time.

#ifndef AC3_COMMON_SIM_TIME_H_
#define AC3_COMMON_SIM_TIME_H_

#include <cstdint>
#include <limits>

namespace ac3 {

/// Milliseconds since simulation start.
using TimePoint = int64_t;
/// Milliseconds.
using Duration = int64_t;

constexpr TimePoint kTimeZero = 0;
constexpr TimePoint kTimeInfinity = std::numeric_limits<int64_t>::max();

constexpr Duration Milliseconds(int64_t ms) { return ms; }
constexpr Duration Seconds(int64_t s) { return s * 1000; }
constexpr Duration Minutes(int64_t m) { return m * 60 * 1000; }
constexpr Duration Hours(int64_t h) { return h * 60 * 60 * 1000; }

/// Converts a duration to fractional seconds (for reporting).
constexpr double ToSeconds(Duration d) { return static_cast<double>(d) / 1000.0; }

}  // namespace ac3

#endif  // AC3_COMMON_SIM_TIME_H_
