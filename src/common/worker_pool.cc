#include "src/common/worker_pool.h"

#include <barrier>
#include <thread>
#include <utility>
#include <vector>

namespace ac3::common {

/// The spawned half of the pool: `width` threads parked on a barrier
/// shared with the caller. A round is two barrier phases — arrive to open
/// (round state published by the caller is now visible), drain, arrive to
/// close (worker writes are now visible to the caller). Destruction
/// releases the workers into their exit check via the same barrier.
class WorkerPool::Gang {
 public:
  Gang(WorkerPool* pool, int width) : pool_(pool), barrier_(width + 1) {
    threads_.reserve(static_cast<size_t>(width));
    for (int t = 0; t < width; ++t) {
      threads_.emplace_back([this] { Loop(); });
    }
  }

  Gang(const Gang&) = delete;
  Gang& operator=(const Gang&) = delete;

  ~Gang() {
    stop_ = true;
    pool_->count_ = 0;  // An empty "round" so Drain() is a no-op.
    barrier_.arrive_and_wait();
    for (std::thread& thread : threads_) thread.join();
  }

  /// Runs the round already staged in the pool's round state; returns
  /// when every index has fully executed (the caller drains alongside).
  void RunRound() {
    barrier_.arrive_and_wait();  // Open the round.
    pool_->Drain();
    barrier_.arrive_and_wait();  // Wait for every worker to finish it.
  }

 private:
  void Loop() {
    for (;;) {
      barrier_.arrive_and_wait();
      if (stop_) return;
      pool_->Drain();
      barrier_.arrive_and_wait();
    }
  }

  WorkerPool* const pool_;
  std::barrier<> barrier_;
  std::vector<std::thread> threads_;
  bool stop_ = false;  ///< Written only between rounds (barrier-ordered).
};

int WorkerPool::ResolveThreads(int threads) {
  if (threads > 0) return threads;
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? static_cast<int>(hardware) : 1;
}

WorkerPool::WorkerPool(int threads) : threads_(ResolveThreads(threads)) {}

WorkerPool::~WorkerPool() = default;

void WorkerPool::Drain() {
  for (size_t i; !failed_.load(std::memory_order_relaxed) &&
                 (i = cursor_.fetch_add(1, std::memory_order_relaxed)) <
                     count_;) {
    try {
      (*task_)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mu_);
      if (error_ == nullptr) error_ = std::current_exception();
      failed_.store(true, std::memory_order_relaxed);
    }
  }
}

void WorkerPool::EnsureWidth(int want) {
  if (want <= gang_width_) return;
  gang_.reset();  // Join the narrower generation first.
  gang_ = std::make_unique<Gang>(this, want);
  gang_width_ = want;
}

void WorkerPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // Never park idle barrier participants: a round of n indices needs at
  // most n - 1 workers beside the caller.
  const int want = static_cast<int>(
      std::min(static_cast<size_t>(threads_ - 1), n - 1));
  if (want <= 0) {
    // Inline serial round — exceptions propagate directly, which is the
    // same caller-visible contract as the parallel rethrow below.
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  EnsureWidth(want);
  task_ = &fn;
  count_ = n;
  cursor_.store(0, std::memory_order_relaxed);
  failed_.store(false, std::memory_order_relaxed);
  error_ = nullptr;
  gang_->RunRound();
  task_ = nullptr;
  if (error_ != nullptr) {
    std::rethrow_exception(std::exchange(error_, nullptr));
  }
}

}  // namespace ac3::common
