// NodePool: slab-backed, thread-cached storage for fixed-size nodes.
//
// The persistent (copy-on-write) trees behind `LedgerState` allocate and
// free one tree node per path-copied level — millions of tiny, same-sized
// allocations over a long simulation. With `std::make_shared` each of those
// is a malloc of node + control block and a heap free on release, and that
// allocator traffic is the dominant per-op cost left in the ledger hot path
// (ROADMAP, PR 2 baselines). NodePool replaces it with slab allocation:
//
//   * memory is carved from per-type slabs of `kSlabNodes` nodes, so node
//     allocation is a thread-local free-list pop (no lock, no size-class
//     lookup) and release is a push;
//   * freed nodes go to the *freeing* thread's cache — a node may be
//     allocated on one thread and released on another (exactly what the
//     parallel sweep and fork-validation paths do with shared snapshot
//     structure);
//   * caches exchange memory with a global overflow list in bounded
//     batches: a cache that grows past two slabs spills one slab's worth,
//     an empty cache refills at most one slab's worth, and a dying
//     thread's cache is spliced over whole — so no single thread hoards
//     the free memory, and worker threads that come and go (a
//     common::WorkerPool gang rebuilt to a wider round, a one-shot
//     runner::ParallelFor pool) keep reusing the same nodes instead of
//     stranding them;
//   * slabs are never returned to the OS: the pool is process-lifetime by
//     design, matching the repo's batch benchmark/test processes.
//
// Sanitizer builds bypass the pool entirely and use plain `::operator
// new`/`delete`, so ASAN retains byte-accurate use-after-free and leak
// detection on every node (a recycling pool would otherwise mask both).
// The tests that assert recycling behavior are compiled out under ASAN via
// `NodePool<T>::kPoolingEnabled`.

#ifndef AC3_COMMON_ARENA_H_
#define AC3_COMMON_ARENA_H_

#include <cstddef>
#include <mutex>
#include <new>

#if defined(__SANITIZE_ADDRESS__)
#define AC3_ARENA_POOLING 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define AC3_ARENA_POOLING 0
#else
#define AC3_ARENA_POOLING 1
#endif
#else
#define AC3_ARENA_POOLING 1
#endif

/// Core utilities shared by every module (the dependency root).
namespace ac3 {

/// Process-lifetime pool of raw `sizeof(T)` storage blocks. Allocate() and
/// Deallocate() hand out *uninitialized* storage: callers placement-new
/// into it and run the destructor before releasing (see PersistentMap's
/// NodeRef). Thread-safe; blocks may be freed on a different thread than
/// the one that allocated them.
template <typename T>
class NodePool {
 public:
  /// Nodes per slab. 1024 nodes of a ledger-map node (~100 B) is a ~100 KiB
  /// slab: big enough to amortize the mutex-guarded refill, small enough
  /// that a short test doesn't look memory-hungry.
  static constexpr size_t kSlabNodes = 1024;

  /// False in sanitizer builds, where every node is a plain heap
  /// allocation so ASAN can see it.
  static constexpr bool kPoolingEnabled = AC3_ARENA_POOLING != 0;

  /// Uninitialized storage for one T.
  static void* Allocate() {
#if AC3_ARENA_POOLING
    return Local().Pop();
#else
    return ::operator new(sizeof(T), std::align_val_t(alignof(T)));
#endif
  }

  /// Returns storage obtained from Allocate(). The T must already be
  /// destroyed.
  static void Deallocate(void* ptr) {
#if AC3_ARENA_POOLING
    Local().Push(ptr);
#else
    ::operator delete(ptr, std::align_val_t(alignof(T)));
#endif
  }

  /// Slabs carved so far, process-wide (monotonic; test/diagnostic hook —
  /// a workload that keeps allocating without recycling shows here).
  static size_t SlabCount() {
#if AC3_ARENA_POOLING
    std::lock_guard<std::mutex> lock(Global().mu);
    return Global().slab_count;
#else
    return 0;
#endif
  }

 private:
#if AC3_ARENA_POOLING
  /// A freed node reinterpreted as a singly-linked free-list link.
  struct FreeNode {
    FreeNode* next;
  };
  static_assert(sizeof(T) >= sizeof(FreeNode),
                "node type too small to thread a free list through");
  static_assert(alignof(T) >= alignof(FreeNode),
                "node alignment too weak for the free-list link");

  /// Shared refill/overflow state. Heap-allocated once and intentionally
  /// immortal: thread caches splice into it from thread destructors, which
  /// may run after any static destructor (pooling builds never free slabs,
  /// so there is nothing to reclaim at exit anyway).
  struct GlobalState {
    std::mutex mu;
    FreeNode* overflow = nullptr;
    size_t slab_count = 0;
  };

  static GlobalState& Global() {
    static GlobalState* global = new GlobalState;
    return *global;
  }

  class LocalCache {
   public:
    ~LocalCache() {
      if (head_ == nullptr) return;
      // Splice the whole local list onto the global overflow so the next
      // worker generation reuses it.
      FreeNode* tail = head_;
      while (tail->next != nullptr) tail = tail->next;
      GlobalState& global = Global();
      std::lock_guard<std::mutex> lock(global.mu);
      tail->next = global.overflow;
      global.overflow = head_;
      head_ = nullptr;
    }

    void* Pop() {
      if (head_ == nullptr) Refill();
      FreeNode* node = head_;
      head_ = node->next;
      --count_;
      return node;
    }

    void Push(void* ptr) {
      FreeNode* node = static_cast<FreeNode*>(ptr);
      node->next = head_;
      head_ = node;
      // High-water spill: a cache holding two slabs' worth returns one
      // slab's worth to the overflow, so a thread that frees far more
      // than it allocates (the bench main thread tearing down a long
      // chain) doesn't hoard everything other threads could reuse.
      if (++count_ >= 2 * kSlabNodes) Spill();
    }

   private:
    /// Takes at most one slab's worth from the global overflow, else
    /// carves a new slab. Bounded adoption keeps one hungry thread from
    /// swallowing the whole shared list.
    void Refill() {
      GlobalState& global = Global();
      {
        std::lock_guard<std::mutex> lock(global.mu);
        if (global.overflow != nullptr) {
          FreeNode* tail = global.overflow;
          size_t got = 1;
          while (got < kSlabNodes && tail->next != nullptr) {
            tail = tail->next;
            ++got;
          }
          head_ = global.overflow;
          global.overflow = tail->next;
          tail->next = nullptr;
          count_ = got;
          return;
        }
        ++global.slab_count;
      }
      // Slab memory is immortal (see file comment); alignment covers T.
      char* slab = static_cast<char*>(
          ::operator new(kSlabNodes * sizeof(T), std::align_val_t(alignof(T))));
      for (size_t i = kSlabNodes; i-- > 0;) {
        Push(slab + i * sizeof(T));
      }
    }

    /// Moves one slab's worth of nodes to the global overflow.
    void Spill() {
      FreeNode* batch = head_;
      FreeNode* tail = head_;
      for (size_t i = 1; i < kSlabNodes; ++i) tail = tail->next;
      head_ = tail->next;
      count_ -= kSlabNodes;
      GlobalState& global = Global();
      std::lock_guard<std::mutex> lock(global.mu);
      tail->next = global.overflow;
      global.overflow = batch;
    }

    FreeNode* head_ = nullptr;
    size_t count_ = 0;
  };

  static LocalCache& Local() {
    thread_local LocalCache cache;
    return cache;
  }
#endif  // AC3_ARENA_POOLING
};

}  // namespace ac3

#endif  // AC3_COMMON_ARENA_H_
