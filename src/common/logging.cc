#include "src/common/logging.h"

#include <cstring>
#include <iostream>

namespace ac3 {

namespace {
LogLevel g_level = LogLevel::kWarn;
}  // namespace

LogLevel Logger::level() { return g_level; }

void Logger::set_level(LogLevel level) { g_level = level; }

const char* Logger::LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

void Logger::Write(LogLevel level, const std::string& message) {
  if (level < g_level) return;
  std::cerr << "[" << LevelName(level) << "] " << message << "\n";
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = std::strrchr(file, '/');
  stream_ << (base ? base + 1 : file) << ":" << line << " ";
}

LogMessage::~LogMessage() { Logger::Write(level_, stream_.str()); }

}  // namespace internal
}  // namespace ac3
