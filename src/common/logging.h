// Minimal leveled logger.
//
// The simulator is single-threaded by design (discrete events), so the
// logger is deliberately simple: a global level, ostream sink, and a macro
// that formats lazily. Protocol engines log at kDebug; experiment harnesses
// default the level to kWarn so benchmark output stays clean.

#ifndef AC3_COMMON_LOGGING_H_
#define AC3_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace ac3 {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// Global log configuration.
class Logger {
 public:
  static LogLevel level();
  static void set_level(LogLevel level);
  /// Emits one formatted line to stderr.
  static void Write(LogLevel level, const std::string& message);
  static const char* LevelName(LogLevel level);
};

namespace internal {
/// Accumulates one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

#define AC3_LOG(severity)                                    \
  if (::ac3::LogLevel::severity < ::ac3::Logger::level()) {  \
  } else                                                     \
    ::ac3::internal::LogMessage(::ac3::LogLevel::severity, __FILE__, \
                                __LINE__)                    \
        .stream()

}  // namespace ac3

#endif  // AC3_COMMON_LOGGING_H_
