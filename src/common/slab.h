// SlabPool: an instance-owned, fixed-size-class slab allocator.
//
// The sharded chain indexes (src/common/sharded_index.h) store one node per
// indexed key — a many-chain world holds millions of them, and with plain
// `new` each node is an individual malloc with its own size-class lookup
// and heap metadata. SlabPool carves node storage out of large slabs
// instead, in the spirit of rippled's `SlabAllocator`:
//
//   * every block in a pool has the same size (the "fixed size class"), so
//     allocation is a free-list pop and release is a push — no lock, no
//     size lookup, no per-block heap header;
//   * slabs are sized to amortize the carve (~64 KiB by default), and the
//     pool reports exactly how many bytes it reserved — the hook the
//     many-chain bench and the slab memory-ceiling tests assert against;
//   * unlike the process-lifetime `NodePool` (src/common/arena.h), a
//     SlabPool is *owned by its container*: destroying the index frees the
//     slabs, so hundreds of per-chain indexes can come and go without
//     stranding memory, and per-index accounting stays exact.
//
// Thread safety: none — a SlabPool belongs to one shard of one index, and
// index mutation is serial (Blockchain commits are single-threaded; the
// parallel validation phase only reads). This is what lets the hot path be
// two pointer moves.
//
// Sanitizer builds bypass the slabs and use plain `::operator new` /
// `delete` per block (same discipline as NodePool), so ASAN keeps
// byte-accurate use-after-free and leak detection on every node. Tests
// that assert slab geometry are gated on `SlabPool::kPoolingEnabled`.

#ifndef AC3_COMMON_SLAB_H_
#define AC3_COMMON_SLAB_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <new>
#include <vector>

#include "src/common/arena.h"  // AC3_ARENA_POOLING: the one sanitizer probe.

namespace ac3 {

/// Instance-owned pool of equally-sized raw storage blocks, carved from
/// large slabs. Allocate()/Deallocate() hand out *uninitialized* storage:
/// callers placement-new into it and run the destructor before releasing.
/// Not thread-safe; blocks must be released to the pool they came from,
/// and every block must be released before the pool is destroyed.
class SlabPool {
 public:
  /// False in sanitizer builds, where every block is a plain heap
  /// allocation so ASAN can see it individually.
  static constexpr bool kPoolingEnabled = AC3_ARENA_POOLING != 0;

  /// A pool of `block_size`-byte blocks (rounded up to pointer alignment;
  /// blocks are aligned for any type with `alignof <= alignof(max_align_t)`).
  /// `blocks_per_slab` 0 picks a slab of ~64 KiB, clamped to [8, 1024]
  /// blocks so tiny pools stay cheap and huge nodes still amortize.
  explicit SlabPool(size_t block_size, size_t blocks_per_slab = 0)
      : block_size_(RoundUp(std::max(block_size, sizeof(FreeBlock)))),
        blocks_per_slab_(blocks_per_slab != 0
                             ? blocks_per_slab
                             : std::clamp<size_t>(kTargetSlabBytes / block_size_,
                                                  8, 1024)) {}

  /// Blocks point into the slabs: not copyable.
  SlabPool(const SlabPool&) = delete;
  /// Blocks point into the slabs: not assignable.
  SlabPool& operator=(const SlabPool&) = delete;

  /// Releases every slab. All blocks must have been Deallocate()d.
  ~SlabPool() {
    assert(live_blocks_ == 0 && "blocks outliving their SlabPool");
    for (void* slab : slabs_) {
      ::operator delete(slab, std::align_val_t(alignof(std::max_align_t)));
    }
  }

  /// Uninitialized storage for one block.
  void* Allocate() {
    ++live_blocks_;
#if AC3_ARENA_POOLING
    if (free_ == nullptr) CarveSlab();
    FreeBlock* block = free_;
    free_ = block->next;
    return block;
#else
    return ::operator new(block_size_,
                          std::align_val_t(alignof(std::max_align_t)));
#endif
  }

  /// Returns storage obtained from Allocate(). Any object constructed in
  /// it must already be destroyed.
  void Deallocate(void* ptr) {
    assert(live_blocks_ > 0);
    --live_blocks_;
#if AC3_ARENA_POOLING
    FreeBlock* block = static_cast<FreeBlock*>(ptr);
    block->next = free_;
    free_ = block;
#else
    ::operator delete(ptr, std::align_val_t(alignof(std::max_align_t)));
#endif
  }

  /// The (rounded-up) size every block in this pool has.
  size_t block_size() const { return block_size_; }
  /// Blocks carved per slab.
  size_t blocks_per_slab() const { return blocks_per_slab_; }
  /// Slabs carved so far (monotonic while the pool lives).
  size_t slab_count() const { return slabs_.size(); }
  /// Blocks currently allocated and not yet released.
  size_t live_blocks() const { return live_blocks_; }

  /// Total bytes this pool has reserved from the heap. In pooling builds
  /// this is slab memory (live or free — the number a memory ceiling must
  /// bound); under sanitizers it degrades to live blocks only.
  size_t bytes_reserved() const {
#if AC3_ARENA_POOLING
    return slabs_.size() * blocks_per_slab_ * block_size_;
#else
    return live_blocks_ * block_size_;
#endif
  }

 private:
  /// A free block reinterpreted as a singly-linked free-list link.
  struct FreeBlock {
    FreeBlock* next;
  };

  static constexpr size_t kTargetSlabBytes = 64 * 1024;

  static size_t RoundUp(size_t size) {
    constexpr size_t kAlign = alignof(std::max_align_t);
    return (size + kAlign - 1) / kAlign * kAlign;
  }

#if AC3_ARENA_POOLING
  void CarveSlab() {
    char* slab = static_cast<char*>(
        ::operator new(blocks_per_slab_ * block_size_,
                       std::align_val_t(alignof(std::max_align_t))));
    slabs_.push_back(slab);
    // Thread the slab onto the free list front-to-back so the first pops
    // come out in address order (friendlier to the fault-in pattern).
    for (size_t i = blocks_per_slab_; i-- > 0;) {
      FreeBlock* block =
          reinterpret_cast<FreeBlock*>(slab + i * block_size_);
      block->next = free_;
      free_ = block;
    }
  }
#endif

  size_t block_size_;
  size_t blocks_per_slab_;
  std::vector<void*> slabs_;
  FreeBlock* free_ = nullptr;
  size_t live_blocks_ = 0;
};

}  // namespace ac3

#endif  // AC3_COMMON_SLAB_H_
