// ShardedIndex: an N-way hash-sharded map with slab-backed nodes and an
// intrusive hot-entry list per shard.
//
// This is the storage behind the chain-global indexes (tx -> occurrences,
// contract -> call entries, hash -> block entry; see
// src/chain/chain_index.h). The requirements those indexes share:
//
//   * **pointer stability** — block entries are referenced by raw pointer
//     everywhere (parent links, head pointers, occurrence lists), so
//     values must never move. Nodes are slab-allocated (one SlabPool per
//     shard) and only the bucket *pointer table* rehashes.
//   * **sharding by key hash** — a world of hundreds of chains holds
//     millions of index entries; N smaller shards keep bucket tables in
//     reasonable allocation sizes, keep rehash pauses short, and give
//     every per-shard structure (slab pool, hot list) locality.
//   * **deterministic iteration** — ForEach visits shards in index order
//     and entries in per-shard insertion order, a pure function of the
//     operation sequence (never of pointer values or rehash timing), so
//     golden tests and committed bench fingerprints stay reproducible.
//   * **a hot-entry fast path** — each shard fronts an intrusive
//     LRU-style list (in the spirit of rippled's `TaggedCacheIntr`):
//     inserts and non-const finds move the node to the list head, and
//     every lookup checks the current head before walking its bucket —
//     repeated queries for the same key (a protocol engine polling one
//     contract's calls on every head move) skip the hash walk entirely.
//
// Thread safety: mutation is single-threaded, const lookups are safe to
// run concurrently *between* mutations (the const path is read-only —
// only the non-const Find/Touch overloads move hot-list links). That is
// exactly the Blockchain discipline: parallel validation reads, the
// serial commit phase writes.
//
// Oracle mode: `Options{.oracle = true}` swaps the backing storage for a
// single plain std::unordered_map (no shards, no slabs, no hot list)
// behind the same API. Equivalence tests and the many-chain bench drive
// identical operation sequences through both modes and fail on any
// divergence, the same discipline as `MineHeaderScalar` /
// `VisibleHeadScan`.

#ifndef AC3_COMMON_SHARDED_INDEX_H_
#define AC3_COMMON_SHARDED_INDEX_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/slab.h"

namespace ac3 {

/// N-way hash-sharded map with slab-backed, pointer-stable nodes, a
/// deterministic iteration order, per-shard intrusive hot-entry lists,
/// and a single-map oracle mode for equivalence testing. Insert-only by
/// design (values stay mutable): the chain indexes it backs are
/// append-only fork-tree stores.
template <typename K, typename V, typename Hasher = std::hash<K>>
class ShardedIndex {
 public:
  /// Construction knobs. Defaults match the per-chain index use case.
  struct Options {
    /// Shard count; rounded up to a power of two, at least 1.
    size_t shards = 16;
    /// True routes every operation through one plain std::unordered_map —
    /// the reference implementation the sharded backend is tested against.
    bool oracle = false;
    /// Blocks per slab for the node pools (0 = SlabPool's ~64 KiB auto).
    size_t blocks_per_slab = 0;
  };

  /// An index with the given options (no allocation until the first
  /// insert beyond the shard headers).
  explicit ShardedIndex(Options options = Options{})
      : oracle_(options.oracle) {
    const size_t want = options.oracle ? 1 : std::max<size_t>(options.shards, 1);
    size_t shards = 1;
    while (shards < want) shards <<= 1;
    shard_bits_ = 0;
    while ((size_t{1} << shard_bits_) < shards) ++shard_bits_;
    shards_.reserve(shards);
    for (size_t s = 0; s < shards; ++s) {
      shards_.push_back(std::make_unique<Shard>(options.blocks_per_slab));
    }
  }

  /// Stored values are referenced by stable pointer: not copyable.
  ShardedIndex(const ShardedIndex&) = delete;
  /// Stored values are referenced by stable pointer: not assignable.
  ShardedIndex& operator=(const ShardedIndex&) = delete;

  /// Destroys every node and returns its block to the shard's pool.
  ~ShardedIndex() {
    for (auto& shard : shards_) {
      Node* walk = shard->order_head;
      while (walk != nullptr) {
        Node* next = walk->order_next;
        walk->~Node();
        shard->pool.Deallocate(walk);
        walk = next;
      }
    }
  }

  /// Number of keys stored.
  size_t size() const { return size_; }
  /// True when no keys are stored.
  bool empty() const { return size_ == 0; }
  /// Number of shards (1 in oracle mode).
  size_t shard_count() const { return shards_.size(); }
  /// True when this instance runs the single-map oracle backend.
  bool is_oracle() const { return oracle_; }

  /// Read-only lookup; nullptr when absent. Safe to call concurrently
  /// with other const lookups (checks the shard's hot head, then walks
  /// the bucket — never mutates).
  const V* Find(const K& key) const {
    const Node* node = FindNode(key);
    return node != nullptr ? &node->kv.second : nullptr;
  }

  /// Mutable lookup; additionally moves the entry to the front of its
  /// shard's hot list. Serial contexts only.
  V* Find(const K& key) {
    Node* node = const_cast<Node*>(FindNode(key));
    if (node != nullptr) Touch(node);
    return node != nullptr ? &node->kv.second : nullptr;
  }

  /// True when `key` is stored.
  bool Contains(const K& key) const { return FindNode(key) != nullptr; }

  /// Inserts `value` under `key`; returns the stable value pointer and
  /// whether an insert happened (false = key existed, value untouched).
  std::pair<V*, bool> Emplace(const K& key, V value) {
    const size_t hash = Hasher{}(key);
    Shard& shard = ShardFor(hash);
    Node* existing = FindInShard(shard, hash, key);
    if (existing != nullptr) {
      Touch(existing);
      return {&existing->kv.second, false};
    }
    Node* node = new (shard.pool.Allocate()) Node(key, std::move(value), hash);
    LinkNode(shard, node);
    ++size_;
    return {&node->kv.second, true};
  }

  /// The value under `key`, default-constructing (and hot-listing) it on
  /// first use — the accumulator idiom (`index.GetOrCreate(id).push_back`).
  V& GetOrCreate(const K& key) { return *Emplace(key, V{}).first; }

  /// Moves the entry for `key` (if any) to the front of its shard's hot
  /// list without returning it. Serial contexts only.
  void Touch(const K& key) {
    Node* node = const_cast<Node*>(FindNode(key));
    if (node != nullptr) Touch(node);
  }

  /// Visits every (key, value) pair: shards in index order, entries in
  /// per-shard insertion order. The order is a pure function of the
  /// operation sequence and the shard count — never of pointer values,
  /// rehash timing, or platform hash quirks within a run — so two
  /// identically-driven instances iterate identically.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& shard : shards_) {
      for (const Node* node = shard->order_head; node != nullptr;
           node = node->order_next) {
        fn(node->kv.first, node->kv.second);
      }
    }
  }

  /// Visits up to `per_shard_limit` most-recently-touched entries per
  /// shard, hottest first (insertion counts as a touch). Empty in oracle
  /// mode, which keeps no hot list.
  template <typename Fn>
  void ForEachHot(size_t per_shard_limit, Fn&& fn) const {
    for (const auto& shard : shards_) {
      size_t visited = 0;
      for (const Node* node = shard->hot_head;
           node != nullptr && visited < per_shard_limit;
           node = node->hot_next, ++visited) {
        fn(node->kv.first, node->kv.second);
      }
    }
  }

  /// Total bytes the node pools have reserved across shards (slab memory,
  /// live or free). Excludes heap owned by the values themselves and the
  /// bucket pointer tables. Zero in oracle mode.
  size_t bytes_reserved() const {
    size_t total = 0;
    for (const auto& shard : shards_) total += shard->pool.bytes_reserved();
    return total;
  }

 private:
  struct Node {
    Node(const K& key, V value, size_t h)
        : hash(h), kv(key, std::move(value)) {}
    Node* bucket_next = nullptr;
    Node* order_next = nullptr;
    Node* hot_prev = nullptr;
    Node* hot_next = nullptr;
    size_t hash = 0;
    std::pair<const K, V> kv;
  };

  struct Shard {
    explicit Shard(size_t blocks_per_slab)
        : pool(sizeof(Node), blocks_per_slab) {}
    SlabPool pool;
    std::vector<Node*> buckets;  // Power-of-two sized; empty until first use.
    Node* order_head = nullptr;
    Node* order_tail = nullptr;
    Node* hot_head = nullptr;
    Node* hot_tail = nullptr;
    std::unordered_map<K, Node*, Hasher> oracle_map;  // Oracle backend only.
    size_t count = 0;
  };

  /// Finalizer-mixed key hash: decorrelates the shard selector (low bits)
  /// from the in-shard bucket index (bits above shard_bits_) even for
  /// identity-like std::hash implementations.
  static size_t Mix(size_t hash) {
    uint64_t x = static_cast<uint64_t>(hash);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<size_t>(x);
  }

  Shard& ShardFor(size_t hash) {
    return *shards_[Mix(hash) & (shards_.size() - 1)];
  }
  const Shard& ShardFor(size_t hash) const {
    return *shards_[Mix(hash) & (shards_.size() - 1)];
  }

  size_t BucketIndex(const Shard& shard, size_t hash) const {
    return (Mix(hash) >> shard_bits_) & (shard.buckets.size() - 1);
  }

  const Node* FindNode(const K& key) const {
    const size_t hash = Hasher{}(key);
    const Shard& shard = ShardFor(hash);
    return FindInShard(const_cast<Shard&>(shard), hash, key);
  }

  Node* FindInShard(Shard& shard, size_t hash, const K& key) const {
    if (oracle_) {
      auto it = shard.oracle_map.find(key);
      return it == shard.oracle_map.end() ? nullptr : it->second;
    }
    // Hot-head fast path: a repeated lookup of the shard's most recently
    // touched key skips the bucket walk (plain pointer reads — safe under
    // concurrent const lookups).
    const Node* hot = shard.hot_head;
    if (hot != nullptr && hot->hash == hash && hot->kv.first == key) {
      return const_cast<Node*>(hot);
    }
    if (shard.buckets.empty()) return nullptr;
    for (Node* walk = shard.buckets[BucketIndex(shard, hash)]; walk != nullptr;
         walk = walk->bucket_next) {
      if (walk->hash == hash && walk->kv.first == key) return walk;
    }
    return nullptr;
  }

  void LinkNode(Shard& shard, Node* node) {
    // Insertion-order chain (the deterministic iteration spine).
    if (shard.order_tail == nullptr) {
      shard.order_head = shard.order_tail = node;
    } else {
      shard.order_tail->order_next = node;
      shard.order_tail = node;
    }
    ++shard.count;
    if (oracle_) {
      shard.oracle_map.emplace(node->kv.first, node);
      return;
    }
    if (shard.count > shard.buckets.size()) {
      // Rehash walks the order chain, which already holds `node` — it
      // buckets the new node too, so don't push it a second time.
      Rehash(shard);
    } else {
      const size_t index = BucketIndex(shard, node->hash);
      node->bucket_next = shard.buckets[index];
      shard.buckets[index] = node;
    }
    PushHot(shard, node);
  }

  /// Doubles the bucket table (load factor 1) and relinks every node.
  /// Nodes never move; only bucket heads change.
  void Rehash(Shard& shard) {
    size_t buckets = shard.buckets.empty() ? 8 : shard.buckets.size() * 2;
    while (buckets < shard.count) buckets *= 2;
    shard.buckets.assign(buckets, nullptr);
    for (Node* walk = shard.order_head; walk != nullptr;
         walk = walk->order_next) {
      const size_t index = BucketIndex(shard, walk->hash);
      walk->bucket_next = shard.buckets[index];
      shard.buckets[index] = walk;
    }
  }

  void PushHot(Shard& shard, Node* node) {
    node->hot_prev = nullptr;
    node->hot_next = shard.hot_head;
    if (shard.hot_head != nullptr) shard.hot_head->hot_prev = node;
    shard.hot_head = node;
    if (shard.hot_tail == nullptr) shard.hot_tail = node;
  }

  void Touch(Node* node) {
    if (oracle_) return;
    Shard& shard = ShardFor(node->hash);
    if (shard.hot_head == node) return;
    // Unlink, then push to the front.
    if (node->hot_prev != nullptr) node->hot_prev->hot_next = node->hot_next;
    if (node->hot_next != nullptr) node->hot_next->hot_prev = node->hot_prev;
    if (shard.hot_tail == node) shard.hot_tail = node->hot_prev;
    PushHot(shard, node);
  }

  bool oracle_;
  size_t shard_bits_ = 0;
  size_t size_ = 0;
  /// unique_ptr keeps Shard addresses stable across the vector and lets
  /// Shard hold the non-movable SlabPool.
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace ac3

#endif  // AC3_COMMON_SHARDED_INDEX_H_
